// Package service is the incremental coloring service: a long-running
// state machine that maintains a valid list defective coloring under a
// stream of edge/node insert and delete operations.
//
// It is the churn generalization of internal/repair — the paper's
// locality is the whole trick: a color choice is invalidated only by
// changes in its immediate neighborhood, so an update batch yields a
// small *dirty set* (endpoints of inserted or deleted edges, former
// neighbors of removed nodes, nodes whose lists changed), which is
// classified into defect-budget-absorbed vs hard conflicts and handed
// to repair.HealLocal for bounded deterministic recoloring seeded at
// exactly those nodes. The maintenance cost (recolor broadcasts,
// rounds, locality) is billed separately per batch.
//
// Topology lives in a graph.Overlay: reads on untouched vertices stay
// zero-copy views into the immutable CSR substrate, mutations are
// per-node patches, and the service compacts the overlay back into a
// fresh CSR whenever the patch count crosses a threshold — in a
// background goroutine over a frozen shallow copy, with the finished
// CSR swapped in deterministically at the next batch boundary, so the
// fold is off the apply critical path.
//
// The same locality also makes the write path parallel: with
// Options.Shards > 1, each batch is partitioned by the contiguous
// degree-mass-balanced shard regions its ops' dirty frontiers touch
// (the receiver-range sharding of internal/sim/shard.go); ops whose
// frontier stays inside one region apply and repair concurrently,
// cross-region ops run in a deterministic sequential epilogue, and any
// divergence risk (op error, repair frontier escaping its region)
// falls back to replaying the pristine single-writer path — so colors,
// BatchReport accounting, and error text are byte-identical to
// Shards=1 at every shard count. See sharded.go.
//
// Concurrency contract: writers are serialized by a mutex (ApplyBatch
// remains externally single-writer); readers never take it — every
// batch publishes an immutable snapshot (colors, topology view, and
// counters) through an atomic pointer, so Color/ColorsOf/Stats/
// HasEdge/DegreeOf are lock-free and safe under any number of
// concurrent readers while batches apply.
package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/repair"
)

// Op actions. AddNode appends a fresh vertex (its id is reported in
// BatchReport.NewNodes); RemoveNode detaches a vertex's edges and
// leaves an id-stable tombstone; SetList replaces a node's color list
// and defect budgets.
const (
	OpAddEdge    = "add_edge"
	OpRemoveEdge = "remove_edge"
	OpAddNode    = "add_node"
	OpRemoveNode = "remove_node"
	OpSetList    = "set_list"
)

// Op is one update operation. U/V address edges; Node addresses
// remove_node and set_list; List/Defects carry set_list payloads and
// optionally seed add_node (defaulting to the full palette with zero
// budgets).
type Op struct {
	Action  string `json:"action"`
	U       int    `json:"u,omitempty"`
	V       int    `json:"v,omitempty"`
	Node    int    `json:"node,omitempty"`
	List    []int  `json:"list,omitempty"`
	Defects []int  `json:"defects,omitempty"`
}

// ErrOp marks a rejected operation: the batch stops at the offending
// op (prior ops stay applied), repair still runs, and the error
// reports the index. Unwrap for the cause.
var ErrOp = errors.New("service: bad operation")

// Options tunes a Service.
type Options struct {
	// RoundBudget caps repair rounds per batch; 0 means
	// repair.DefaultBudget(n).
	RoundBudget int
	// CompactThreshold is the patched-vertex count that triggers
	// overlay compaction after a batch; 0 means max(1024, n/8).
	CompactThreshold int
	// Shards enables the parallel sharded write path: batches apply
	// and repair concurrently across that many contiguous
	// degree-mass-balanced vertex regions, byte-identical to the
	// single-writer path. 0 or 1 keeps the sequential path.
	Shards int
}

// Snapshot is the immutable read-side state one batch publishes: a
// private color slice, a lock-free topology view, the running
// counters as of the batch, and the batch version that produced it.
type Snapshot struct {
	Version uint64
	Colors  []int
	// Topo is the topology at this version (base CSR plus the
	// published per-batch delta chain) — HasEdge/DegreeOf serve from
	// it without touching the writer lock.
	Topo *graph.TopoView
	// Stats is the running account as of this version (time-derived
	// fields are filled in by Service.Stats at read time).
	Stats Stats
}

// BatchReport is the maintenance bill of one applied batch.
type BatchReport struct {
	// Applied is the number of ops applied (< len(ops) iff an op was
	// rejected).
	Applied int `json:"applied"`
	// NewNodes lists the ids assigned to add_node ops, in order.
	NewNodes []int `json:"new_nodes,omitempty"`
	// Dirty is the seed-set size handed to repair.
	Dirty int `json:"dirty"`
	// Hard is the number of dirty nodes in hard violation before
	// repair; Absorbed is the conflict count the defect budgets soaked
	// up at the dirty nodes without any recoloring.
	Hard     int `json:"hard"`
	Absorbed int `json:"absorbed"`
	// Rounds/Recolored/Scanned/Fallbacks and the message bill come
	// from repair.HealLocal; Recolored is the batch's recolor
	// locality (nodes touched).
	Rounds              int  `json:"rounds"`
	Recolored           int  `json:"recolored"`
	Scanned             int  `json:"scanned"`
	Fallbacks           int  `json:"fallbacks"`
	MaintenanceMessages int  `json:"maintenance_messages"`
	MaintenanceBits     int  `json:"maintenance_bits"`
	Compacted           bool `json:"compacted"`
	// Converged reports that no hard node remained within the round
	// budget (the service's steady-state invariant).
	Converged bool   `json:"converged"`
	Version   uint64 `json:"version"`
}

// Stats is the running account served at /v1/stats.
type Stats struct {
	Version             uint64  `json:"version"`
	Nodes               int     `json:"nodes"`
	Edges               int64   `json:"edges"`
	Patched             int     `json:"patched"`
	Batches             int64   `json:"batches"`
	Updates             int64   `json:"updates"`
	Rejected            int64   `json:"rejected"`
	HardConflicts       int64   `json:"hard_conflicts"`
	AbsorbedConflicts   int64   `json:"absorbed_conflicts"`
	Recolored           int64   `json:"recolored"`
	RepairRounds        int64   `json:"repair_rounds"`
	Fallbacks           int64   `json:"fallbacks"`
	MaintenanceMessages int64   `json:"maintenance_messages"`
	MaintenanceBits     int64   `json:"maintenance_bits"`
	Compactions         int64   `json:"compactions"`
	UpdatesPerSec       float64 `json:"updates_per_sec"`
	// RecolorLocality is recolored nodes per applied update — the
	// maintenance-locality headline number.
	RecolorLocality float64 `json:"recolor_locality"`
	UptimeSec       float64 `json:"uptime_sec"`

	// Sharded write path counters (diagnostics; all zero at Shards≤1).
	// ParallelBatches counts batches whose apply+repair both completed
	// on the parallel path; DeferredOps counts ops routed through the
	// sequential epilogue; ApplyFallbacks/RepairFallbacks count
	// batches that fell back to the pristine sequential path at the
	// apply or repair stage. ShardApplied/ShardRecolored break the
	// parallel-path work down per region.
	Shards          int     `json:"shards"`
	ParallelBatches int64   `json:"parallel_batches"`
	DeferredOps     int64   `json:"deferred_ops"`
	ApplyFallbacks  int64   `json:"apply_fallbacks"`
	RepairFallbacks int64   `json:"repair_fallbacks"`
	ShardApplied    []int64 `json:"shard_applied,omitempty"`
	ShardRecolored  []int64 `json:"shard_recolored,omitempty"`
}

// Service maintains the coloring. Construct with New; the zero value
// is not usable.
type Service struct {
	mu     sync.Mutex // serializes ApplyBatch (the single writer)
	ov     *graph.Overlay
	inst   *coloring.Instance
	colors []int
	opts   Options

	snap  atomic.Pointer[Snapshot]
	start time.Time

	// topo is the writer's handle on the published topology view; it
	// is extended by one delta per batch and rebuilt on rebase.
	topo *graph.TopoView

	// pendingCompact is non-nil while a background compaction builds a
	// CSR from a frozen overlay copy; the writer blocks on it at the
	// next batch boundary and rebases. rebased marks the publish that
	// must collapse the topology view onto the new base.
	pendingCompact chan compactResult
	rebased        bool

	// bounds caches the shard-region boundaries for the current base
	// CSR (interior boundaries depend only on the base and the shard
	// count; the final boundary tracks n).
	bounds     []int
	boundsBase *graph.CSR

	// accumulated totals, guarded by mu; published into every
	// snapshot so Stats() never takes the lock.
	version uint64
	totals  Stats
}

type compactResult struct {
	csr *graph.CSR
	err error
}

// New builds a service over the CSR substrate. The instance is cloned
// (the service mutates lists on add_node/set_list). When colors is
// nil the service initializes with repair.GreedyColors; either way it
// runs a global Heal so the published state is valid from version 0 —
// an invalid initial state that cannot be healed within the budget is
// an error.
func New(base *graph.CSR, inst *coloring.Instance, colors []int, opts Options) (*Service, error) {
	if base == nil || inst == nil {
		return nil, fmt.Errorf("service: need a graph and an instance")
	}
	if inst.N() != base.N() {
		return nil, fmt.Errorf("service: instance covers %d nodes, graph has %d", inst.N(), base.N())
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("service: negative shard count %d", opts.Shards)
	}
	s := &Service{
		ov:    graph.NewOverlay(base),
		inst:  inst.Clone(),
		opts:  opts,
		start: time.Now(),
		topo:  graph.NewTopoView(base),
	}
	s.ov.EnableSnapshots()
	if colors == nil {
		s.colors = repair.GreedyColors(s.ov, s.inst)
	} else {
		if len(colors) != base.N() {
			return nil, fmt.Errorf("service: %d colors for %d nodes", len(colors), base.N())
		}
		s.colors = append([]int(nil), colors...)
	}
	hr := repair.Heal(s.ov, s.inst, s.colors, repair.HealOptions{RoundBudget: opts.RoundBudget})
	if !hr.Converged {
		return nil, fmt.Errorf("service: initial coloring does not heal (%d hard nodes left)", hr.Hard)
	}
	s.totals.HardConflicts += int64(hr.Hard)
	s.totals.Recolored += int64(hr.Recolored)
	s.totals.RepairRounds += int64(hr.Rounds)
	s.totals.Fallbacks += int64(hr.Fallbacks)
	s.totals.MaintenanceMessages += int64(hr.Messages)
	s.totals.MaintenanceBits += int64(hr.Bits)
	if s.shards() > 1 {
		s.totals.ShardApplied = make([]int64, s.shards())
		s.totals.ShardRecolored = make([]int64, s.shards())
	}
	s.publish()
	return s, nil
}

// shards returns the effective shard count (≥1).
func (s *Service) shards() int {
	if s.opts.Shards > 1 {
		return s.opts.Shards
	}
	return 1
}

// publish seals the batch's overlay mutations, extends the topology
// view, and installs the immutable snapshot. Caller holds mu (or is
// the constructor).
func (s *Service) publish() {
	delta := s.ov.CommitDelta()
	if s.rebased {
		s.topo = graph.RebasedTopoView(s.ov.Base(), s.ov.RowsSnapshot(), s.ov.N(), s.ov.Arcs())
		s.rebased = false
	} else {
		s.topo = s.topo.Extend(delta, s.ov.N(), s.ov.Arcs())
	}
	st := s.totals
	st.Version = s.version
	st.Nodes = s.ov.N()
	st.Edges = s.ov.M()
	st.Patched = s.ov.Patched()
	st.Shards = s.shards()
	st.ShardApplied = append([]int64(nil), s.totals.ShardApplied...)
	st.ShardRecolored = append([]int64(nil), s.totals.ShardRecolored...)
	snap := &Snapshot{
		Version: s.version,
		Colors:  append([]int(nil), s.colors...),
		Topo:    s.topo,
		Stats:   st,
	}
	s.snap.Store(snap)
}

// Snapshot returns the current immutable read state.
func (s *Service) Snapshot() *Snapshot { return s.snap.Load() }

// Color returns node v's color and the snapshot version, lock-free.
// ok is false when v is not a known node.
func (s *Service) Color(v int) (color int, version uint64, ok bool) {
	snap := s.snap.Load()
	if v < 0 || v >= len(snap.Colors) {
		return 0, snap.Version, false
	}
	return snap.Colors[v], snap.Version, true
}

// ColorsOf returns the colors of the requested nodes from one
// consistent snapshot. Unknown nodes yield ok=false.
func (s *Service) ColorsOf(nodes []int) (colors []int, version uint64, ok bool) {
	snap := s.snap.Load()
	colors = make([]int, len(nodes))
	ok = true
	for i, v := range nodes {
		if v < 0 || v >= len(snap.Colors) {
			ok = false
			continue
		}
		colors[i] = snap.Colors[v]
	}
	return colors, snap.Version, ok
}

// N returns the current node count (from the read snapshot).
func (s *Service) N() int { return len(s.snap.Load().Colors) }

// HasEdge reports whether {u, v} is present in the current snapshot,
// lock-free — reads never wait behind a batch in flight.
func (s *Service) HasEdge(u, v int) bool {
	return s.snap.Load().Topo.HasEdge(u, v)
}

// DegreeOf returns v's degree in the current snapshot (0 for unknown
// nodes), lock-free like HasEdge.
func (s *Service) DegreeOf(v int) int {
	t := s.snap.Load().Topo
	if v < 0 || v >= t.N() {
		return 0
	}
	return t.Degree(v)
}

// Stats returns the running account from the current snapshot,
// lock-free; only the uptime-derived rates are computed at read time.
func (s *Service) Stats() Stats {
	st := s.snap.Load().Stats
	st.ShardApplied = append([]int64(nil), st.ShardApplied...)
	st.ShardRecolored = append([]int64(nil), st.ShardRecolored...)
	st.UptimeSec = time.Since(s.start).Seconds()
	if st.UptimeSec > 0 {
		st.UpdatesPerSec = float64(st.Updates) / st.UptimeSec
	}
	if st.Updates > 0 {
		st.RecolorLocality = float64(st.Recolored) / float64(st.Updates)
	}
	return st
}

// ApplyBatch applies ops in order under the writer lock, repairs the
// dirty set, and publishes a new snapshot. A rejected op stops the
// batch — prior ops stay applied, repair still runs so the published
// coloring is valid, and the error (wrapping ErrOp with the op index)
// is returned alongside the report of what did happen. With
// Options.Shards > 1 the apply and repair stages run region-parallel;
// the result is byte-identical either way.
func (s *Service) ApplyBatch(ops []Op) (BatchReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	var rep BatchReport
	if err := s.swapCompaction(); err != nil {
		return rep, err
	}

	var dirty []int
	var opErr error
	if s.shards() > 1 {
		dirty, opErr = s.applySharded(ops, &rep)
	} else {
		dirty, opErr = s.applySeq(ops, &rep)
	}
	rep.Dirty = len(dirty)

	// Pre-repair classification of the dirty set: conflicts the defect
	// budgets absorb outright vs hard violations repair must fix.
	for _, v := range dirty {
		conf := 0
		for _, u := range s.ov.Neighbors(v) {
			if s.colors[u] == s.colors[v] {
				conf++
			}
		}
		if allowed, ok := s.inst.DefectOf(v, s.colors[v]); ok && conf <= allowed {
			rep.Absorbed += conf
		}
	}

	hr := s.repairDirty(dirty)
	rep.Hard = hr.Hard
	rep.Rounds = hr.Rounds
	rep.Recolored = hr.Recolored
	rep.Scanned = hr.Scanned
	rep.Fallbacks = hr.Fallbacks
	rep.MaintenanceMessages = hr.Messages
	rep.MaintenanceBits = hr.Bits
	rep.Converged = hr.Converged

	s.maybeCompact(&rep)

	s.totals.Batches++
	s.totals.Updates += int64(rep.Applied)
	s.totals.Rejected += int64(len(ops) - rep.Applied)
	s.totals.HardConflicts += int64(rep.Hard)
	s.totals.AbsorbedConflicts += int64(rep.Absorbed)
	s.totals.Recolored += int64(rep.Recolored)
	s.totals.RepairRounds += int64(rep.Rounds)
	s.totals.Fallbacks += int64(rep.Fallbacks)
	s.totals.MaintenanceMessages += int64(rep.MaintenanceMessages)
	s.totals.MaintenanceBits += int64(rep.MaintenanceBits)

	s.version++
	rep.Version = s.version
	s.publish()
	return rep, opErr
}

// applySeq is the single-writer apply loop: ops mutate the overlay in
// order, stopping at the first rejected op. It returns the sorted
// dirty seed set. This path is the differential oracle the sharded
// path must match byte for byte — and its replay target on fallback.
func (s *Service) applySeq(ops []Op, rep *BatchReport) ([]int, error) {
	dirtyMark := make(map[int]bool)
	addDirty := func(vs ...int) {
		for _, v := range vs {
			dirtyMark[v] = true
		}
	}
	var opErr error
	for i, op := range ops {
		if err := s.apply(op, rep, addDirty); err != nil {
			opErr = fmt.Errorf("%w: op %d (%s): %v", ErrOp, i, op.Action, err)
			break
		}
		rep.Applied++
	}
	dirty := make([]int, 0, len(dirtyMark))
	for v := range dirtyMark {
		dirty = append(dirty, v)
	}
	sort.Ints(dirty)
	return dirty, opErr
}

// repairDirty heals the dirty seed set: region-parallel when sharding
// is on and the batch produced seeds, global HealLocal otherwise (and
// as the fallback whenever any region's repair frontier escapes its
// region — either way the colors and the report are byte-identical to
// the sequential schedule).
func (s *Service) repairDirty(dirty []int) repair.HealReport {
	if s.shards() > 1 && len(dirty) > 0 {
		if hr, ok := s.repairSharded(dirty); ok {
			return hr
		}
		s.totals.RepairFallbacks++
	}
	return repair.HealLocal(s.ov, s.inst, s.colors, dirty, repair.HealOptions{RoundBudget: s.opts.RoundBudget})
}

// swapCompaction installs a finished background compaction at the
// batch boundary: it blocks until the builder goroutine delivers (the
// build overlaps everything between the two batches), rebases the
// overlay onto the new CSR, and marks the next publish to collapse
// the topology view.
func (s *Service) swapCompaction() error {
	if s.pendingCompact == nil {
		return nil
	}
	res := <-s.pendingCompact
	s.pendingCompact = nil
	if res.err != nil {
		return fmt.Errorf("service: compaction failed: %w", res.err)
	}
	s.ov.Rebase(res.csr)
	s.rebased = true
	s.bounds = nil
	s.boundsBase = nil
	return nil
}

// maybeCompact launches a background compaction when the patch count
// crosses the threshold and none is in flight: the overlay is frozen
// (shallow copy — published rows are copy-on-write, so the builder
// reads a consistent state while the writer keeps mutating) and a
// goroutine folds it into a CSR for swapCompaction to install at the
// next batch boundary. The launch is deterministic in the update
// stream, so Compacted/Compactions accounting is identical at every
// shard count.
func (s *Service) maybeCompact(rep *BatchReport) {
	if s.pendingCompact != nil {
		return
	}
	threshold := s.opts.CompactThreshold
	if threshold <= 0 {
		threshold = s.ov.N() / 8
		if threshold < 1024 {
			threshold = 1024
		}
	}
	if s.ov.Patched() <= threshold {
		return
	}
	frozen := s.ov.Freeze()
	ch := make(chan compactResult, 1)
	go func() {
		csr, err := frozen.Compact()
		ch <- compactResult{csr: csr, err: err}
	}()
	s.pendingCompact = ch
	rep.Compacted = true
	s.totals.Compactions++
}

// apply executes one op against the overlay/instance/colors state,
// recording dirty seeds. Caller holds mu.
func (s *Service) apply(op Op, rep *BatchReport, addDirty func(...int)) error {
	switch op.Action {
	case OpAddEdge:
		if err := s.ov.AddEdge(op.U, op.V); err != nil {
			return err
		}
		addDirty(op.U, op.V)
	case OpRemoveEdge:
		if !s.ov.RemoveEdge(op.U, op.V) {
			return fmt.Errorf("edge {%d,%d} not present", op.U, op.V)
		}
		addDirty(op.U, op.V)
	case OpAddNode:
		list, defects, err := s.newNodeConstraints(op)
		if err != nil {
			return err
		}
		v := s.ov.AddNode()
		s.inst.Lists = append(s.inst.Lists, list)
		s.inst.Defects = append(s.inst.Defects, defects)
		s.colors = append(s.colors, list[0])
		rep.NewNodes = append(rep.NewNodes, v)
		addDirty(v)
	case OpRemoveNode:
		if op.Node < 0 || op.Node >= s.ov.N() {
			return fmt.Errorf("node %d out of range", op.Node)
		}
		former := s.ov.RemoveNode(op.Node)
		addDirty(op.Node)
		addDirty(former...)
	case OpSetList:
		if op.Node < 0 || op.Node >= s.ov.N() {
			return fmt.Errorf("node %d out of range", op.Node)
		}
		list, defects, err := s.checkConstraints(op.List, op.Defects)
		if err != nil {
			return err
		}
		s.inst.Lists[op.Node] = list
		s.inst.Defects[op.Node] = defects
		addDirty(op.Node)
	default:
		return fmt.Errorf("unknown action %q", op.Action)
	}
	return nil
}

// newNodeConstraints resolves an add_node op's list/defects, applying
// the full-palette default.
func (s *Service) newNodeConstraints(op Op) ([]int, []int, error) {
	if len(op.List) == 0 {
		list := make([]int, s.inst.Space)
		for i := range list {
			list[i] = i
		}
		return list, make([]int, s.inst.Space), nil
	}
	return s.checkConstraints(op.List, op.Defects)
}

// checkConstraints validates a list/defect pair against the palette
// and normalizes it to the Instance invariant: sorted ascending,
// duplicate-free, defects kept aligned through the sort. (DefectOf
// binary-searches the list, so an unsorted list would make a node
// unhealable: repair would keep assigning list colors the hardness
// check cannot find.)
func (s *Service) checkConstraints(list, defects []int) ([]int, []int, error) {
	if len(list) == 0 {
		return nil, nil, fmt.Errorf("empty color list")
	}
	if defects == nil {
		defects = make([]int, len(list))
	}
	if len(defects) != len(list) {
		return nil, nil, fmt.Errorf("%d defects for %d list colors", len(defects), len(list))
	}
	idx := make([]int, len(list))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return list[idx[a]] < list[idx[b]] })
	outList := make([]int, len(list))
	outDefects := make([]int, len(list))
	for i, j := range idx {
		x, d := list[j], defects[j]
		if x < 0 || x >= s.inst.Space {
			return nil, nil, fmt.Errorf("color %d outside palette [0,%d)", x, s.inst.Space)
		}
		if d < 0 {
			return nil, nil, fmt.Errorf("negative defect budget %d", d)
		}
		if i > 0 && x == outList[i-1] {
			return nil, nil, fmt.Errorf("duplicate list color %d", x)
		}
		outList[i] = x
		outDefects[i] = d
	}
	return outList, outDefects, nil
}

// stateImage assembles the checkpoint encoder's view of the full
// service state under the writer lock. The returned image references
// live instance slices (lists/defects are replaced, never mutated in
// place, so sharing is safe) but copies colors and topology rows — the
// encoder may run after the lock drops.
func (s *Service) stateImage() *checkpointState {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.ov.N()
	cs := &checkpointState{
		version: s.version,
		colors:  append([]int(nil), s.colors...),
		space:   s.inst.Space,
		lists:   append([][]int(nil), s.inst.Lists...),
		defects: append([][]int(nil), s.inst.Defects...),
		rowsUp:  make([][]int, n),
		totals:  s.totals,
	}
	cs.totals.ShardApplied = append([]int64(nil), s.totals.ShardApplied...)
	cs.totals.ShardRecolored = append([]int64(nil), s.totals.ShardRecolored...)
	for v := 0; v < n; v++ {
		row := s.ov.Neighbors(v)
		i := sort.SearchInts(row, v+1)
		if i < len(row) {
			cs.rowsUp[v] = append([]int(nil), row[i:]...)
		}
	}
	return cs
}

// restoreService rebuilds a Service from a decoded checkpoint: the
// topology is folded into a fresh CSR, colors and counters are
// installed verbatim, and no heal runs — the checkpoint was taken at a
// batch boundary of a valid state, and the recovery differential test
// pins the restored image byte-identical to the uninterrupted run.
func restoreService(cs *checkpointState, opts Options) (*Service, error) {
	if opts.Shards < 0 {
		return nil, fmt.Errorf("service: negative shard count %d", opts.Shards)
	}
	n := len(cs.colors)
	if len(cs.lists) != n || len(cs.rowsUp) != n {
		return nil, fmt.Errorf("%w: %d colors, %d lists, %d rows", ErrCheckpoint, n, len(cs.lists), len(cs.rowsUp))
	}
	base, err := graph.StreamCSR(n, func(emit func(u, v int)) {
		for u, row := range cs.rowsUp {
			for _, w := range row {
				emit(u, w)
			}
		}
	})
	if err != nil {
		return nil, fmt.Errorf("%w: rebuilding topology: %v", ErrCheckpoint, err)
	}
	s := &Service{
		ov:     graph.NewOverlay(base),
		inst:   &coloring.Instance{Space: cs.space, Lists: cs.lists, Defects: cs.defects},
		colors: cs.colors,
		opts:   opts,
		start:  time.Now(),
		topo:   graph.NewTopoView(base),
	}
	s.ov.EnableSnapshots()
	s.version = cs.version
	s.totals = cs.totals
	// Shard work-distribution counters are diagnostics of one base
	// CSR's region bounds; a restored base has different bounds, so
	// they restart at zero when the shard count changed.
	if s.shards() > 1 {
		if len(s.totals.ShardApplied) != s.shards() {
			s.totals.ShardApplied = make([]int64, s.shards())
			s.totals.ShardRecolored = make([]int64, s.shards())
		}
	} else {
		s.totals.ShardApplied = nil
		s.totals.ShardRecolored = nil
	}
	s.publish()
	return s, nil
}

// TopologyFingerprint returns the FNV-1a structure hash of the current
// snapshot's topology — the same mixing as graph.CSR.Fingerprint, so
// the value is identical across representations (patched overlay,
// compacted CSR, checkpoint-rebuilt base). The recovery differential
// compares it instead of raw row storage.
func (s *Service) TopologyFingerprint() uint64 {
	t := s.snap.Load().Topo
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x int) {
		u := uint64(x)
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= prime64
			u >>= 8
		}
	}
	n := t.N()
	mix(n)
	for v := 0; v < n; v++ {
		row := t.Row(v)
		mix(len(row))
		for _, w := range row {
			mix(w)
		}
	}
	return h
}

// CanonicalStats zeroes the representation- and time-dependent fields
// of a Stats: Patched and Compactions depend on the overlay's current
// patch layout (a recovered service starts from a freshly compacted
// base), the shard diagnostics depend on the region bounds of that
// base, and the rates are read-time derivatives. What remains is a
// pure function of the applied op stream — the exact account recovery
// must reproduce byte-identically.
func CanonicalStats(st Stats) Stats {
	st.Patched = 0
	st.Compactions = 0
	st.UpdatesPerSec = 0
	st.RecolorLocality = 0
	st.UptimeSec = 0
	st.Shards = 0
	st.ParallelBatches = 0
	st.DeferredOps = 0
	st.ApplyFallbacks = 0
	st.RepairFallbacks = 0
	st.ShardApplied = nil
	st.ShardRecolored = nil
	return st
}

// ValidateState runs a full conflict scan of the current topology
// against the current coloring — the between-batches validity check
// the soak tests call. It takes the writer lock; not for hot paths.
func (s *Service) ValidateState() error {
	return s.AuditState(0).Err()
}

// AuditState runs the whole-graph validity/defect scan through the
// shared coloring.AuditInto kernel and returns the full report —
// conflict mass, absorbed defects, tight nodes — not just the first
// violation. workers ≤ 0 auto-selects (GOMAXPROCS with the small-n
// sequential fallback); the report is identical at every worker count.
// It takes the writer lock; not for hot paths.
func (s *Service) AuditState(workers int) coloring.AuditReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return coloring.AuditInto(s.ov, s.inst, s.colors, nil, workers)
}
