package service

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/repair"
)

// palInstance builds the shared-palette proper instance the churn
// tests use: every node may take any color in [0, space) with zero
// defect budget, so validity = proper coloring and feasibility holds
// while degrees stay below space.
func palInstance(n, space int) *coloring.Instance {
	full := make([]int, space)
	for i := range full {
		full[i] = i
	}
	zeros := make([]int, space)
	inst := &coloring.Instance{Space: space, Lists: make([][]int, n), Defects: make([][]int, n)}
	for v := 0; v < n; v++ {
		inst.Lists[v] = full
		inst.Defects[v] = zeros
	}
	return inst
}

func mustService(t *testing.T, base *graph.CSR, inst *coloring.Instance, opts Options) *Service {
	t.Helper()
	s, err := New(base, inst, nil, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestServiceLifecycle(t *testing.T) {
	s := mustService(t, graph.StreamedRing(12), palInstance(12, 4), Options{})
	if err := s.ValidateState(); err != nil {
		t.Fatalf("initial state invalid: %v", err)
	}
	if c, ver, ok := s.Color(3); !ok || ver != 0 || c < 0 || c >= 4 {
		t.Fatalf("Color(3) = (%d, %d, %v)", c, ver, ok)
	}
	if _, _, ok := s.Color(12); ok {
		t.Fatal("Color(12) accepted an unknown node")
	}

	rep, err := s.ApplyBatch([]Op{
		{Action: OpAddEdge, U: 0, V: 6},
		{Action: OpAddEdge, U: 3, V: 9},
		{Action: OpRemoveEdge, U: 1, V: 2},
	})
	if err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	if rep.Applied != 3 || rep.Dirty != 6 || !rep.Converged || rep.Version != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if err := s.ValidateState(); err != nil {
		t.Fatalf("state invalid after batch: %v", err)
	}
	snap := s.Snapshot()
	if snap.Version != 1 || len(snap.Colors) != 12 {
		t.Fatalf("snapshot = version %d, %d colors", snap.Version, len(snap.Colors))
	}
	cs, ver, ok := s.ColorsOf([]int{0, 6, 3, 9})
	if !ok || ver != 1 || len(cs) != 4 {
		t.Fatalf("ColorsOf = (%v, %d, %v)", cs, ver, ok)
	}
	if cs[0] == cs[1] || cs[2] == cs[3] {
		t.Fatalf("inserted edges still monochromatic: %v", cs)
	}

	st := s.Stats()
	if st.Batches != 1 || st.Updates != 3 || st.Edges != 12+2-1 || st.Nodes != 12 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServiceNodeChurn(t *testing.T) {
	s := mustService(t, graph.StreamedRing(8), palInstance(8, 4), Options{})
	rep, err := s.ApplyBatch([]Op{
		{Action: OpAddNode},
		{Action: OpAddNode, List: []int{1, 2}, Defects: []int{0, 0}},
	})
	if err != nil {
		t.Fatalf("add nodes: %v", err)
	}
	if !reflect.DeepEqual(rep.NewNodes, []int{8, 9}) {
		t.Fatalf("NewNodes = %v", rep.NewNodes)
	}
	if s.N() != 10 {
		t.Fatalf("N = %d", s.N())
	}
	if _, err := s.ApplyBatch([]Op{
		{Action: OpAddEdge, U: 8, V: 0},
		{Action: OpAddEdge, U: 9, V: 8},
		{Action: OpAddEdge, U: 9, V: 1},
	}); err != nil {
		t.Fatalf("attach: %v", err)
	}
	if err := s.ValidateState(); err != nil {
		t.Fatalf("after attach: %v", err)
	}
	if c, _, ok := s.Color(9); !ok || (c != 1 && c != 2) {
		t.Fatalf("node 9 color %d outside its custom list", c)
	}

	rep, err = s.ApplyBatch([]Op{{Action: OpRemoveNode, Node: 8}})
	if err != nil {
		t.Fatalf("remove node: %v", err)
	}
	if rep.Dirty != 3 { // 8 and its former neighbors 0, 9
		t.Fatalf("remove-node dirty = %d, want 3", rep.Dirty)
	}
	if err := s.ValidateState(); err != nil {
		t.Fatalf("after remove: %v", err)
	}

	// set_list forces a recolor when the current color leaves the list;
	// the unsorted input also exercises list normalization.
	c9, _, _ := s.Color(9)
	newList := []int{3, 3 - c9} // excludes the current color (1 or 2)
	rep, err = s.ApplyBatch([]Op{{Action: OpSetList, Node: 9, List: newList}})
	if err != nil {
		t.Fatalf("set_list: %v", err)
	}
	if rep.Hard != 1 || rep.Recolored < 1 || !rep.Converged {
		t.Fatalf("set_list report = %+v", rep)
	}
	if c, _, _ := s.Color(9); c != newList[0] && c != newList[1] {
		t.Fatalf("node 9 color %d after list change to %v", c, newList)
	}
}

func TestServiceBatchRejection(t *testing.T) {
	s := mustService(t, graph.StreamedRing(10), palInstance(10, 4), Options{})
	rep, err := s.ApplyBatch([]Op{
		{Action: OpAddEdge, U: 0, V: 5},
		{Action: OpAddEdge, U: 2, V: 2}, // self-loop: rejected
		{Action: OpAddEdge, U: 1, V: 6}, // never applied
	})
	if !errors.Is(err, ErrOp) {
		t.Fatalf("err = %v, want ErrOp", err)
	}
	if rep.Applied != 1 || rep.Version != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if err := s.ValidateState(); err != nil {
		t.Fatalf("state invalid after rejected batch: %v", err)
	}
	st := s.Stats()
	if st.Updates != 1 || st.Rejected != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// The accepted prefix is live, the suffix is not.
	cs, _, _ := s.ColorsOf([]int{1, 6})
	_ = cs
	for _, bad := range [][]Op{
		{{Action: "nonsense"}},
		{{Action: OpRemoveEdge, U: 1, V: 6}},
		{{Action: OpSetList, Node: 3, List: []int{99}}},
		{{Action: OpSetList, Node: 3, List: []int{1}, Defects: []int{0, 0}}},
		{{Action: OpSetList, Node: 3, List: []int{1}, Defects: []int{-1}}},
		{{Action: OpSetList, Node: 3, List: []int{1, 1}}},
		{{Action: OpRemoveNode, Node: 77}},
	} {
		if _, err := s.ApplyBatch(bad); !errors.Is(err, ErrOp) {
			t.Errorf("ops %+v: err = %v, want ErrOp", bad, err)
		}
	}
}

func TestServiceCompaction(t *testing.T) {
	s := mustService(t, graph.StreamedRing(64), palInstance(64, 5), Options{CompactThreshold: 8})
	rng := rand.New(rand.NewSource(2))
	sawCompact := false
	for b := 0; b < 10; b++ {
		var ops []Op
		for i := 0; i < 6; i++ {
			u, v := rng.Intn(64), rng.Intn(64)
			if u == v || s.ov.HasEdge(u, v) || s.ov.Degree(u) >= 3 || s.ov.Degree(v) >= 3 {
				continue
			}
			ops = append(ops, Op{Action: OpAddEdge, U: u, V: v})
		}
		rep, err := s.ApplyBatch(ops)
		if err != nil && !errors.Is(err, ErrOp) {
			t.Fatalf("batch %d: %v", b, err)
		}
		if rep.Compacted {
			sawCompact = true
		}
		if err := s.ValidateState(); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	if !sawCompact {
		t.Fatal("compaction never triggered at threshold 8")
	}
	if s.Stats().Compactions == 0 {
		t.Fatal("compactions not counted")
	}
}

// TestServiceDifferentialGlobalRepair is the churn locality contract
// (the tentpole's correctness argument): for random batches, the
// service's incremental post-repair coloring — HealLocal seeded only
// at the dirty set — must be byte-identical to repairing the *whole*
// mutated graph from the same pre-batch coloring with the global
// full-scan solver, whenever repair reports zero hard-conflict
// fallbacks. The reference replays each batch on its own overlay +
// instance and runs repair.Heal.
func TestServiceDifferentialGlobalRepair(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		base := graph.StreamedGNP(50, 0.08, seed)
		space := 2*base.RawMaxDegree() + 10
		inst := palInstance(50, space)
		s := mustService(t, base, inst, Options{})

		ref := graph.NewOverlay(base)
		refInst := inst.Clone()
		refColors := append([]int(nil), s.Snapshot().Colors...)

		rng := rand.New(rand.NewSource(seed * 131))
		for batch := 0; batch < 25; batch++ {
			var ops []Op
			for i := 0; i < 4; i++ {
				switch k := rng.Intn(10); {
				case k < 5:
					u, v := rng.Intn(s.N()), rng.Intn(s.N())
					if u != v && !ref.HasEdge(u, v) &&
						ref.Degree(u) < space-2 && ref.Degree(v) < space-2 {
						ops = append(ops, Op{Action: OpAddEdge, U: u, V: v})
					}
				case k < 8:
					u := rng.Intn(s.N())
					row := ref.Neighbors(u)
					if len(row) > 0 {
						ops = append(ops, Op{Action: OpRemoveEdge, U: u, V: row[rng.Intn(len(row))]})
					}
				case k < 9:
					ops = append(ops, Op{Action: OpAddNode})
				default:
					v := rng.Intn(s.N())
					list := []int{rng.Intn(space), space - 1 - rng.Intn(space/2)}
					if list[0] == list[1] {
						list = list[:1]
					}
					ops = append(ops, Op{Action: OpSetList, Node: v, List: list})
				}
			}
			rep, err := s.ApplyBatch(ops)
			if err != nil {
				t.Fatalf("seed %d batch %d: %v (ops %+v)", seed, batch, err, ops)
			}

			// Replay on the reference state.
			for _, op := range ops {
				switch op.Action {
				case OpAddEdge:
					if err := ref.AddEdge(op.U, op.V); err != nil {
						t.Fatalf("ref AddEdge: %v", err)
					}
				case OpRemoveEdge:
					if !ref.RemoveEdge(op.U, op.V) {
						t.Fatalf("ref RemoveEdge {%d,%d} absent", op.U, op.V)
					}
				case OpAddNode:
					ref.AddNode()
					full := make([]int, space)
					for i := range full {
						full[i] = i
					}
					refInst.Lists = append(refInst.Lists, full)
					refInst.Defects = append(refInst.Defects, make([]int, space))
					refColors = append(refColors, full[0])
				case OpSetList:
					// Mirror the service's list normalization.
					sorted := append([]int(nil), op.List...)
					sort.Ints(sorted)
					refInst.Lists[op.Node] = sorted
					refInst.Defects[op.Node] = make([]int, len(sorted))
				}
			}
			hr := repair.Heal(ref, refInst, refColors, repair.HealOptions{})
			if rep.Fallbacks == 0 {
				if !reflect.DeepEqual(refColors, s.Snapshot().Colors) {
					t.Fatalf("seed %d batch %d: incremental coloring diverges from global repair", seed, batch)
				}
				if !hr.Converged || !rep.Converged {
					t.Fatalf("seed %d batch %d: converged local=%v global=%v", seed, batch, rep.Converged, hr.Converged)
				}
			}
			if err := s.ValidateState(); err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, batch, err)
			}
		}
	}
}

// TestServiceConcurrentReadWrite is the race soak CI runs with -race
// -count 2: one writer applying batches, several lock-free readers
// checking snapshot self-consistency (colors array intact, versions
// monotone) plus stats reads.
func TestServiceConcurrentReadWrite(t *testing.T) {
	const n = 2000
	s := mustService(t, graph.StreamedRing(n), palInstance(n, 6), Options{})
	var stop atomic.Bool
	var wg sync.WaitGroup

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			lastVer := uint64(0)
			for !stop.Load() {
				snap := s.Snapshot()
				if snap.Version < lastVer {
					t.Errorf("reader %d: version went backwards %d -> %d", r, lastVer, snap.Version)
					return
				}
				lastVer = snap.Version
				if len(snap.Colors) < n {
					t.Errorf("reader %d: snapshot shrank to %d", r, len(snap.Colors))
					return
				}
				v := rng.Intn(n)
				if c, _, ok := s.Color(v); !ok || c < 0 || c >= 6 {
					t.Errorf("reader %d: Color(%d) = (%d, %v)", r, v, c, ok)
					return
				}
				_ = s.Stats()
			}
		}(r)
	}

	rng := rand.New(rand.NewSource(7))
	for b := 0; b < 60; b++ {
		var ops []Op
		for i := 0; i < 20; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if s.ov.HasEdge(u, v) {
				ops = append(ops, Op{Action: OpRemoveEdge, U: u, V: v})
			} else if s.ov.Degree(u) < 4 && s.ov.Degree(v) < 4 {
				ops = append(ops, Op{Action: OpAddEdge, U: u, V: v})
			}
		}
		if _, err := s.ApplyBatch(ops); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if err := s.ValidateState(); err != nil {
		t.Fatal(err)
	}
}
