package service

// sharded.go is the parallel write path (Options.Shards > 1). The
// contract is absolute: colors, BatchReport accounting, and error
// text are byte-identical to the single-writer path at every shard
// count — parallelism is an implementation detail the caller can
// never observe except as throughput.
//
// Why it works (the paper's locality, applied to churn): an op's
// effect — topology mutation, dirty seeds, repair frontier — is
// confined to the op's *touched set* (edge endpoints; a removed
// node plus its neighbors; a relisted node). Ops whose touched sets
// fall inside one contiguous shard region commute with every op of
// every other region, so regions apply concurrently into private
// OverlayView deltas. Ops that straddle regions — plus add_node (id
// assignment is order-sensitive) and anything unclassifiable — are
// deferred to a sequential epilogue in original batch order, with a
// forward taint pass: a deferred op taints its touched nodes, and
// any later op touching a tainted node is deferred too, so two ops
// that share a touched node always execute in batch order.
//
// Nothing escapes the private deltas until the whole batch has
// succeeded: instance/color mutations are staged, the overlay is
// untouched. On any op error the attempt is discarded and the batch
// replays on the pristine sequential path, which reproduces the exact
// partial application, report, and error text of Shards=1. Repair is
// likewise region-parallel (repair.HealRegion over disjoint seed
// partitions) with undo logs; the moment any region's frontier
// escapes its region, all regions roll back and one global HealLocal
// runs — byte-identical either way by the seeded-equals-global
// schedule contract.

import (
	"fmt"
	"sort"
	"sync"

	"listcolor/internal/graph"
	"listcolor/internal/repair"
)

// batchPlan is the classifier's output: op indices per region (batch
// order within each region) and the deferred epilogue (batch order).
type batchPlan struct {
	regionOps [][]int
	deferred  []int
	regional  int // total regional op count
}

// regionBounds returns the shard-region boundaries for the current
// base CSR. Interior boundaries depend only on (base, shard count) —
// cached — while the final boundary tracks the live vertex count, so
// vertices appended since the last compaction land in the last
// region. Caller holds mu.
func (s *Service) regionBounds() []int {
	if s.bounds == nil || s.boundsBase != s.ov.Base() {
		s.bounds = graph.RegionBounds(s.ov.Base(), s.ov.N(), s.shards())
		s.boundsBase = s.ov.Base()
	}
	s.bounds[len(s.bounds)-1] = s.ov.N()
	return s.bounds
}

// classify partitions a batch by the shard regions the ops' touched
// sets fall in. The touched set uses the pre-batch topology for
// remove_node — sound because a node's row can only gain in-region
// neighbors from earlier same-region ops (cross-region and deferred
// ops that touch the node taint it, deferring this op too).
func (s *Service) classify(ops []Op, bounds []int) batchPlan {
	nRegions := len(bounds) - 1
	plan := batchPlan{regionOps: make([][]int, nRegions)}
	nPre := s.ov.N()
	tainted := make(map[int]bool)
	var touched []int

	defer1 := func(i int) {
		plan.deferred = append(plan.deferred, i)
		for _, v := range touched {
			tainted[v] = true
		}
	}

	for i, op := range ops {
		touched = touched[:0]
		classifiable := true
		switch op.Action {
		case OpAddEdge, OpRemoveEdge:
			if op.U < 0 || op.U >= nPre || op.V < 0 || op.V >= nPre {
				classifiable = false
				// Taint the in-range endpoint(s): a later op on them
				// must stay ordered behind this one.
				if op.U >= 0 && op.U < nPre {
					touched = append(touched, op.U)
				}
				if op.V >= 0 && op.V < nPre {
					touched = append(touched, op.V)
				}
			} else {
				touched = append(touched, op.U, op.V)
			}
		case OpRemoveNode:
			if op.Node < 0 || op.Node >= nPre {
				classifiable = false
			} else {
				touched = append(touched, op.Node)
				touched = append(touched, s.ov.Neighbors(op.Node)...)
			}
		case OpSetList:
			if op.Node < 0 || op.Node >= nPre {
				classifiable = false
			} else {
				touched = append(touched, op.Node)
			}
		default:
			// add_node (id assignment is batch-order-sensitive) and
			// unknown actions always run in the epilogue.
			classifiable = false
		}
		if !classifiable {
			defer1(i)
			continue
		}
		r := graph.RegionOf(bounds, touched[0])
		sameRegion := true
		for _, v := range touched {
			if tainted[v] {
				sameRegion = false
				break
			}
			if v < bounds[r] || v >= bounds[r+1] {
				sameRegion = false
				break
			}
		}
		if !sameRegion {
			defer1(i)
			continue
		}
		plan.regionOps[r] = append(plan.regionOps[r], i)
		plan.regional++
	}
	return plan
}

// pendingList is a staged set_list commit (validated and normalized,
// not yet visible in the instance).
type pendingList struct {
	node          int
	list, defects []int
}

// pendingNode is a staged add_node commit.
type pendingNode struct {
	list, defects []int
}

// regionAttempt is one region's private apply state.
type regionAttempt struct {
	view    *graph.OverlayView
	dirty   map[int]bool
	lists   []pendingList
	applied int
	failed  bool

	// captured after the parallel phase
	rows      map[int][]int
	arcsDelta int64
}

// applySharded is the parallel apply stage: classify, apply regional
// ops concurrently into private views, run the deferred epilogue over
// a view layered on the region deltas, and commit everything only on
// full success. Any op error discards the attempt and replays the
// pristine sequential path — the returned dirty set, report, and
// error are byte-identical to applySeq in every case. Caller holds
// mu.
func (s *Service) applySharded(ops []Op, rep *BatchReport) ([]int, error) {
	if len(ops) == 0 {
		return s.applySeq(ops, rep)
	}
	bounds := s.regionBounds()
	plan := s.classify(ops, bounds)
	if plan.regional == 0 {
		// Nothing runs in parallel; the sequential loop is the same
		// result for less machinery.
		return s.applySeq(ops, rep)
	}

	regions := make([]*regionAttempt, len(plan.regionOps))
	var wg sync.WaitGroup
	for r, idxs := range plan.regionOps {
		if len(idxs) == 0 {
			continue
		}
		ra := &regionAttempt{view: s.ov.View(nil), dirty: make(map[int]bool)}
		regions[r] = ra
		wg.Add(1)
		go func(ra *regionAttempt, idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				if err := s.applyViewOp(ra.view, ops[i], ra.dirty, &ra.lists, nil, nil); err != nil {
					ra.failed = true
					return
				}
				ra.applied++
			}
		}(ra, idxs)
	}
	wg.Wait()

	failed := false
	for _, ra := range regions {
		if ra == nil {
			continue
		}
		if ra.failed {
			failed = true
		}
		ra.rows, _, ra.arcsDelta = ra.view.Delta()
	}

	var (
		epiView  *graph.OverlayView
		epiDirty map[int]bool
		epiLists []pendingList
		epiNodes []pendingNode
		newNodes []int
	)
	if !failed {
		extra := func(v int) ([]int, bool) {
			for _, ra := range regions {
				if ra == nil {
					continue
				}
				if row, ok := ra.rows[v]; ok {
					return row, true
				}
			}
			return nil, false
		}
		epiView = s.ov.View(extra)
		epiDirty = make(map[int]bool)
		for _, i := range plan.deferred {
			if err := s.applyViewOp(epiView, ops[i], epiDirty, &epiLists, &epiNodes, &newNodes); err != nil {
				failed = true
				break
			}
		}
	}
	if failed {
		// Discard everything — the overlay, instance, and colors were
		// never touched — and replay the pristine single-writer path,
		// which reproduces the exact partial state, report, and error
		// text of Shards=1.
		s.totals.ApplyFallbacks++
		return s.applySeq(ops, rep)
	}

	// Commit. Region deltas have pairwise-disjoint row sets (each
	// region only mutates rows of its own vertices); the epilogue
	// delta goes last and wins its collisions.
	arcs := s.ov.Arcs()
	deltas := make([]map[int][]int, 0, len(regions)+1)
	for r, ra := range regions {
		if ra == nil {
			continue
		}
		arcs += ra.arcsDelta
		deltas = append(deltas, ra.rows)
		s.totals.ShardApplied[r] += int64(ra.applied)
	}
	epiRows, epiN, epiArcs := epiView.Delta()
	arcs += epiArcs
	deltas = append(deltas, epiRows)
	s.ov.ApplyDeltas(epiN, arcs, deltas...)

	for _, ra := range regions {
		if ra == nil {
			continue
		}
		for _, p := range ra.lists {
			s.inst.Lists[p.node] = p.list
			s.inst.Defects[p.node] = p.defects
		}
	}
	for _, p := range epiLists {
		s.inst.Lists[p.node] = p.list
		s.inst.Defects[p.node] = p.defects
	}
	for _, p := range epiNodes {
		s.inst.Lists = append(s.inst.Lists, p.list)
		s.inst.Defects = append(s.inst.Defects, p.defects)
		s.colors = append(s.colors, p.list[0])
	}

	rep.Applied = len(ops)
	rep.NewNodes = newNodes
	s.totals.DeferredOps += int64(len(plan.deferred))
	s.totals.ParallelBatches++

	size := len(epiDirty)
	for _, ra := range regions {
		if ra != nil {
			size += len(ra.dirty)
		}
	}
	dirty := make([]int, 0, size)
	for _, ra := range regions {
		if ra == nil {
			continue
		}
		for v := range ra.dirty {
			if !epiDirty[v] {
				dirty = append(dirty, v)
			}
		}
	}
	for v := range epiDirty {
		dirty = append(dirty, v)
	}
	sort.Ints(dirty)
	return dirty, nil
}

// applyViewOp executes one op against a view, mirroring
// Service.apply's semantics and error text exactly, but staging every
// instance/color mutation (lists, nodes) so a failed batch leaves no
// trace. nodes/newNodes are nil for region views — the classifier
// never routes add_node to a region.
func (s *Service) applyViewOp(view *graph.OverlayView, op Op, dirty map[int]bool, lists *[]pendingList, nodes *[]pendingNode, newNodes *[]int) error {
	switch op.Action {
	case OpAddEdge:
		if err := view.AddEdge(op.U, op.V); err != nil {
			return err
		}
		dirty[op.U] = true
		dirty[op.V] = true
	case OpRemoveEdge:
		if !view.RemoveEdge(op.U, op.V) {
			return fmt.Errorf("edge {%d,%d} not present", op.U, op.V)
		}
		dirty[op.U] = true
		dirty[op.V] = true
	case OpAddNode:
		list, defects, err := s.newNodeConstraints(op)
		if err != nil {
			return err
		}
		v := view.AddNode()
		*nodes = append(*nodes, pendingNode{list: list, defects: defects})
		*newNodes = append(*newNodes, v)
		dirty[v] = true
	case OpRemoveNode:
		if op.Node < 0 || op.Node >= view.N() {
			return fmt.Errorf("node %d out of range", op.Node)
		}
		former := view.RemoveNode(op.Node)
		dirty[op.Node] = true
		for _, u := range former {
			dirty[u] = true
		}
	case OpSetList:
		if op.Node < 0 || op.Node >= view.N() {
			return fmt.Errorf("node %d out of range", op.Node)
		}
		list, defects, err := s.checkConstraints(op.List, op.Defects)
		if err != nil {
			return err
		}
		*lists = append(*lists, pendingList{node: op.Node, list: list, defects: defects})
		dirty[op.Node] = true
	default:
		return fmt.Errorf("unknown action %q", op.Action)
	}
	return nil
}

// repairSharded heals the dirty set region-parallel: the sorted seeds
// are partitioned by region and one repair.HealRegion per non-empty
// region runs concurrently over the shared colors slice (regions only
// read and write their own vertices). If every region's frontier
// stayed contained the merged report is byte-identical to the global
// seeded run; otherwise every region's recolors are rolled back and
// the caller falls back to global HealLocal. Caller holds mu; the
// overlay is read-only for the duration.
func (s *Service) repairSharded(dirty []int) (repair.HealReport, bool) {
	bounds := s.regionBounds()
	nRegions := len(bounds) - 1
	if nRegions <= 1 {
		return repair.HealReport{}, false
	}
	seeds := make([][]int, nRegions)
	r := 0
	for _, v := range dirty {
		for r+1 < nRegions && v >= bounds[r+1] {
			r++
		}
		seeds[r] = append(seeds[r], v)
	}

	reports := make([]repair.HealReport, nRegions)
	undos := make([][]repair.Recolor, nRegions)
	oks := make([]bool, nRegions)
	var wg sync.WaitGroup
	active := 0
	for i := 0; i < nRegions; i++ {
		if len(seeds[i]) == 0 {
			oks[i] = true
			continue
		}
		active++
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], undos[i], oks[i] = repair.HealRegion(
				s.ov, s.inst, s.colors, seeds[i], bounds[i], bounds[i+1], s.opts.RoundBudget)
		}(i)
	}
	wg.Wait()

	for i := 0; i < nRegions; i++ {
		if !oks[i] {
			// A frontier escaped its region: restore every region's
			// recolors (regions write disjoint vertices, so rollback
			// order across regions is immaterial) and let the global
			// seeded run take it from the exact pre-repair state.
			for j := 0; j < nRegions; j++ {
				repair.Rollback(s.colors, undos[j])
			}
			return repair.HealReport{}, false
		}
	}

	merged := make([]repair.HealReport, 0, active)
	for i := 0; i < nRegions; i++ {
		if len(seeds[i]) == 0 {
			continue
		}
		merged = append(merged, reports[i])
		s.totals.ShardRecolored[i] += int64(reports[i].Recolored)
	}
	return repair.MergeRegionReports(merged), true
}
