package service

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
)

// slackInstance builds an instance sized to the topology: palette
// space maxdeg+4 (so a conflict-minimizing recolor always has room)
// with a uniform defect budget of 1 — enough slack that the initial
// Heal converges on every generator, and enough pressure that churn
// produces real hard conflicts and recolors.
func slackInstance(base *graph.CSR) *coloring.Instance {
	maxDeg := 0
	for v := 0; v < base.N(); v++ {
		if d := base.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	space := maxDeg + 4
	full := make([]int, space)
	for i := range full {
		full[i] = i
	}
	ones := make([]int, space)
	for i := range ones {
		ones[i] = 1
	}
	inst := &coloring.Instance{Space: space, Lists: make([][]int, base.N()), Defects: make([][]int, base.N())}
	for v := 0; v < base.N(); v++ {
		inst.Lists[v] = full
		inst.Defects[v] = ones
	}
	return inst
}

// churnMirror tracks the topology a generated script produces, so op
// generation is deterministic and independent of any service state.
type churnMirror struct {
	n   int
	adj []map[int]bool
}

func newChurnMirror(base *graph.CSR) *churnMirror {
	m := &churnMirror{n: base.N(), adj: make([]map[int]bool, base.N())}
	for v := 0; v < base.N(); v++ {
		m.adj[v] = make(map[int]bool)
		for _, u := range base.Row(v) {
			m.adj[v][u] = true
		}
	}
	return m
}

// nextWithEdges scans deterministically from u for a node with at
// least one incident edge (-1 if the graph is empty).
func (m *churnMirror) nextWithEdges(u int) int {
	for d := 0; d < m.n; d++ {
		v := (u + d) % m.n
		if len(m.adj[v]) > 0 {
			return v
		}
	}
	return -1
}

// smallestNeighbor returns min(adj[u]) by deterministic scan (map
// iteration order must never leak into the script).
func (m *churnMirror) smallestNeighbor(u int) int {
	for d := 1; d < m.n; d++ {
		v := (u + d) % m.n
		if m.adj[u][v] {
			return v
		}
	}
	return -1
}

// churnScript generates a deterministic batched op stream: mostly
// spatially local edge churn (offsets ≤ 8, so most frontiers stay
// inside one shard region), plus long-range edges, node add/remove,
// and set_list — the cross-region and order-sensitive traffic the
// epilogue must serialize.
func churnScript(base *graph.CSR, batches, batchSize int, seed int64) [][]Op {
	rng := rand.New(rand.NewSource(seed))
	m := newChurnMirror(base)
	script := make([][]Op, 0, batches)
	for b := 0; b < batches; b++ {
		ops := make([]Op, 0, batchSize)
		for len(ops) < batchSize {
			switch r := rng.Intn(100); {
			case r < 50: // local add_edge
				u := rng.Intn(m.n)
				v := (u + 1 + rng.Intn(8)) % m.n
				if u == v || m.adj[u][v] {
					continue
				}
				m.adj[u][v], m.adj[v][u] = true, true
				ops = append(ops, Op{Action: OpAddEdge, U: u, V: v})
			case r < 60: // long-range add_edge (usually cross-region)
				u := rng.Intn(m.n)
				v := (u + m.n/2 + rng.Intn(8)) % m.n
				if u == v || m.adj[u][v] {
					continue
				}
				m.adj[u][v], m.adj[v][u] = true, true
				ops = append(ops, Op{Action: OpAddEdge, U: u, V: v})
			case r < 80: // remove_edge
				u := m.nextWithEdges(rng.Intn(m.n))
				if u < 0 {
					continue
				}
				v := m.smallestNeighbor(u)
				delete(m.adj[u], v)
				delete(m.adj[v], u)
				ops = append(ops, Op{Action: OpRemoveEdge, U: u, V: v})
			case r < 85: // add_node (default full-palette list)
				m.adj = append(m.adj, make(map[int]bool))
				m.n++
				ops = append(ops, Op{Action: OpAddNode})
			case r < 92: // remove_node
				u := m.nextWithEdges(rng.Intn(m.n))
				if u < 0 {
					continue
				}
				for v := range m.adj[u] {
					delete(m.adj[v], u)
				}
				m.adj[u] = make(map[int]bool)
				ops = append(ops, Op{Action: OpRemoveNode, Node: u})
			default: // set_list: bump the node's defect budget
				u := rng.Intn(m.n)
				space := 0 // filled by caller via inst? keep full list implicit
				_ = space
				ops = append(ops, Op{Action: OpSetList, Node: u})
			}
		}
		script = append(script, ops)
	}
	return script
}

// fillSetLists completes set_list ops with the instance's palette (a
// full list, defect budget 2 — a slack bump the repair schedule
// must account identically at every shard count).
func fillSetLists(script [][]Op, space int) {
	full := make([]int, space)
	for i := range full {
		full[i] = i
	}
	twos := make([]int, space)
	for i := range twos {
		twos[i] = 2
	}
	for _, ops := range script {
		for i := range ops {
			if ops[i].Action == OpSetList {
				ops[i].List = full
				ops[i].Defects = twos
			}
		}
	}
}

// batchOutcome is everything observable from one ApplyBatch call.
type batchOutcome struct {
	rep    BatchReport
	errStr string
	colors []int
}

// runScript drives a fresh service through the script, recording
// every batch's full observable outcome.
func runScript(t *testing.T, base *graph.CSR, inst *coloring.Instance, opts Options, script [][]Op) ([]batchOutcome, Stats) {
	t.Helper()
	s := mustService(t, base, inst, opts)
	outs := make([]batchOutcome, 0, len(script))
	for bi, ops := range script {
		rep, err := s.ApplyBatch(ops)
		errStr := ""
		if err != nil {
			errStr = err.Error()
		}
		snap := s.Snapshot()
		outs = append(outs, batchOutcome{rep: rep, errStr: errStr, colors: snap.Colors})
		if err == nil {
			if verr := s.ValidateState(); verr != nil {
				t.Fatalf("batch %d: invalid state: %v", bi, verr)
			}
		}
	}
	return outs, s.Stats()
}

// normalizeStats zeroes the fields that legitimately differ across
// shard counts (shard diagnostics) or across runs (time-derived
// rates). Everything else must be byte-identical.
func normalizeStats(st Stats) Stats {
	st.Shards = 0
	st.ParallelBatches = 0
	st.DeferredOps = 0
	st.ApplyFallbacks = 0
	st.RepairFallbacks = 0
	st.ShardApplied = nil
	st.ShardRecolored = nil
	st.UptimeSec = 0
	st.UpdatesPerSec = 0
	return st
}

func sweepTopologies(t *testing.T) map[string]*graph.CSR {
	t.Helper()
	return map[string]*graph.CSR{
		"ring":     graph.StreamedRing(400),
		"gnp":      graph.StreamedGNP(300, 0.015, 11),
		"powerlaw": graph.StreamedPowerLaw(300, 2, 7),
	}
}

// TestShardSweepEquivalence is the tentpole contract: on ring, gnp,
// and power-law churn scripts, every batch's colors, BatchReport, and
// error text — and the final counter totals — are byte-identical
// across shards ∈ {1, 2, 4, 7, GOMAXPROCS}, with background
// compaction active (small threshold) so rebase scheduling is
// exercised under the sweep too.
func TestShardSweepEquivalence(t *testing.T) {
	shardCounts := []int{1, 2, 4, 7, runtime.GOMAXPROCS(0)}
	for name, base := range sweepTopologies(t) {
		inst := slackInstance(base)
		script := churnScript(base, 40, 8, int64(len(name))*1000+42)
		fillSetLists(script, inst.Space)

		refOuts, refStats := runScript(t, base, inst, Options{Shards: 1, CompactThreshold: 64}, script)
		refN := normalizeStats(refStats)

		for _, sc := range shardCounts {
			if sc <= 1 {
				continue
			}
			outs, stats := runScript(t, base, inst, Options{Shards: sc, CompactThreshold: 64}, script)
			if len(outs) != len(refOuts) {
				t.Fatalf("%s shards=%d: %d outcomes vs %d", name, sc, len(outs), len(refOuts))
			}
			for bi := range outs {
				if !reflect.DeepEqual(outs[bi].rep, refOuts[bi].rep) {
					t.Fatalf("%s shards=%d batch %d: report diverged\n got %+v\nwant %+v",
						name, sc, bi, outs[bi].rep, refOuts[bi].rep)
				}
				if outs[bi].errStr != refOuts[bi].errStr {
					t.Fatalf("%s shards=%d batch %d: error text %q, want %q",
						name, sc, bi, outs[bi].errStr, refOuts[bi].errStr)
				}
				if !reflect.DeepEqual(outs[bi].colors, refOuts[bi].colors) {
					t.Fatalf("%s shards=%d batch %d: colors diverged", name, sc, bi)
				}
			}
			if got := normalizeStats(stats); !reflect.DeepEqual(got, refN) {
				t.Fatalf("%s shards=%d: stats diverged\n got %+v\nwant %+v", name, sc, got, refN)
			}
			if name == "ring" && sc == 4 {
				// The local-churn ring script must actually exercise the
				// parallel path — a sweep that silently fell back to
				// sequential every batch would vacuously pass.
				if stats.ParallelBatches == 0 {
					t.Fatalf("%s shards=%d: no batch took the parallel path", name, sc)
				}
				applied := int64(0)
				for _, a := range stats.ShardApplied {
					applied += a
				}
				if applied == 0 {
					t.Fatalf("%s shards=%d: no regional ops applied", name, sc)
				}
			}
		}
	}
}

// TestShardSweepErrorParity pins the rejection path: batches with a
// failing op at the front, middle, and back — range errors, duplicate
// edges, absent edges, unknown actions, bad lists — produce identical
// partial application, report, and error text at every shard count
// (the sharded path discards its attempt and replays sequentially).
func TestShardSweepErrorParity(t *testing.T) {
	base := graph.StreamedRing(120)
	inst := slackInstance(base)
	batches := [][]Op{
		// error first: nothing applies
		{{Action: OpAddEdge, U: 5, V: 5}, {Action: OpAddEdge, U: 1, V: 3}},
		// error mid-batch after regional ops
		{{Action: OpAddEdge, U: 10, V: 12}, {Action: OpRemoveEdge, U: 40, V: 77}, {Action: OpAddEdge, U: 20, V: 22}},
		// error last, after a deferred (cross-region) op
		{{Action: OpAddEdge, U: 2, V: 62}, {Action: OpAddEdge, U: 30, V: 32}, {Action: OpAddEdge, U: 200, V: 3}},
		// duplicate edge created earlier in the same batch
		{{Action: OpAddEdge, U: 50, V: 53}, {Action: OpAddEdge, U: 53, V: 50}},
		// unknown action between valid ops
		{{Action: OpAddEdge, U: 70, V: 72}, {Action: "bogus", Node: 1}, {Action: OpRemoveEdge, U: 70, V: 72}},
		// bad set_list payloads
		{{Action: OpSetList, Node: 8, List: []int{}}, {Action: OpAddEdge, U: 80, V: 82}},
		{{Action: OpSetList, Node: 9, List: []int{1, 1}}, {Action: OpAddEdge, U: 90, V: 92}},
		{{Action: OpSetList, Node: 9, List: []int{3}, Defects: []int{-1}}},
		// remove_node out of range after regional traffic
		{{Action: OpAddEdge, U: 100, V: 102}, {Action: OpRemoveNode, Node: 5000}},
		// recovery batch: everything valid again
		{{Action: OpAddEdge, U: 1, V: 5}, {Action: OpRemoveEdge, U: 10, V: 12}},
	}

	run := func(shards int) ([]batchOutcome, Stats) {
		s := mustService(t, base, inst, Options{Shards: shards})
		outs := make([]batchOutcome, 0, len(batches))
		for _, ops := range batches {
			rep, err := s.ApplyBatch(ops)
			errStr := ""
			if err != nil {
				errStr = err.Error()
			}
			outs = append(outs, batchOutcome{rep: rep, errStr: errStr, colors: s.Snapshot().Colors})
		}
		return outs, s.Stats()
	}

	refOuts, refStats := run(1)
	for _, sc := range []int{2, 4, 7} {
		outs, stats := run(sc)
		for bi := range outs {
			if outs[bi].errStr != refOuts[bi].errStr {
				t.Fatalf("shards=%d batch %d: error %q, want %q", sc, bi, outs[bi].errStr, refOuts[bi].errStr)
			}
			if !reflect.DeepEqual(outs[bi].rep, refOuts[bi].rep) {
				t.Fatalf("shards=%d batch %d: report diverged\n got %+v\nwant %+v", sc, bi, outs[bi].rep, refOuts[bi].rep)
			}
			if !reflect.DeepEqual(outs[bi].colors, refOuts[bi].colors) {
				t.Fatalf("shards=%d batch %d: colors diverged", sc, bi)
			}
		}
		if got, want := normalizeStats(stats), normalizeStats(refStats); !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: stats diverged\n got %+v\nwant %+v", sc, got, want)
		}
	}
}

// TestSnapshotReadsLockFree pins the read-path contract: Stats,
// HasEdge, DegreeOf, Color, and ColorsOf are served from the atomic
// snapshot and never take the writer lock — calling them while the
// lock is held must not deadlock.
func TestSnapshotReadsLockFree(t *testing.T) {
	s := mustService(t, graph.StreamedRing(32), palInstance(32, 4), Options{})
	if _, err := s.ApplyBatch([]Op{{Action: OpAddEdge, U: 0, V: 2}}); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}

	s.mu.Lock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if !s.HasEdge(0, 2) {
			t.Error("HasEdge(0,2) = false after insert")
		}
		if d := s.DegreeOf(0); d != 3 {
			t.Errorf("DegreeOf(0) = %d, want 3", d)
		}
		if st := s.Stats(); st.Updates != 1 {
			t.Errorf("Stats().Updates = %d, want 1", st.Updates)
		}
		if _, _, ok := s.Color(0); !ok {
			t.Error("Color(0) not ok")
		}
		if _, _, ok := s.ColorsOf([]int{0, 1}); !ok {
			t.Error("ColorsOf not ok")
		}
	}()
	<-done
	s.mu.Unlock()
}

// TestServiceConcurrentShardedReadWrite is the -race soak for the
// sharded write path: a writer applies local-churn batches at
// Shards=4 (parallel region goroutines mutating views and repairing
// colors) while reader goroutines hammer the snapshot endpoints,
// including topology reads through the published TopoView chain
// across background compaction swaps.
func TestServiceConcurrentShardedReadWrite(t *testing.T) {
	const n = 600
	base := graph.StreamedRing(n)
	inst := slackInstance(base)
	s := mustService(t, base, inst, Options{Shards: 4, CompactThreshold: 32})
	script := churnScript(base, 30, 8, 99)
	fillSetLists(script, inst.Space)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := i % s.N()
				s.Color(v)
				s.HasEdge(v, (v+1)%n)
				s.DegreeOf(v)
				s.Stats()
				s.ColorsOf([]int{v, (v + 7) % n})
				snap := s.Snapshot()
				if snap.Topo.N() != len(snap.Colors) {
					t.Errorf("snapshot topo n=%d vs %d colors", snap.Topo.N(), len(snap.Colors))
					return
				}
				i++
			}
		}(g)
	}

	for bi, ops := range script {
		if _, err := s.ApplyBatch(ops); err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
	}
	close(stop)
	wg.Wait()
	if err := s.ValidateState(); err != nil {
		t.Fatalf("final state invalid: %v", err)
	}
	if st := s.Stats(); st.ParallelBatches == 0 {
		t.Fatal("soak never took the parallel path")
	}
}

// benchReads is the read mix the lock-contention satellite measures:
// previously Stats/HasEdge/DegreeOf took the writer lock and stalled
// behind ApplyBatch; now all three serve from the atomic snapshot.
func benchReads(s *Service, i, n int) int {
	v := i % n
	sink := 0
	if s.HasEdge(v, (v+1)%n) {
		sink++
	}
	sink += s.DegreeOf(v)
	sink += int(s.Stats().Updates)
	return sink
}

// BenchmarkSnapshotReadsIdleWriter is the baseline read cost with no
// writer traffic.
func BenchmarkSnapshotReadsIdleWriter(b *testing.B) {
	const n = 4096
	base := graph.StreamedRing(n)
	s, err := New(base, palInstance(n, 4), nil, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += benchReads(s, i, n)
	}
	_ = sink
}

// BenchmarkSnapshotReadsBusyWriter is the same read mix while a
// writer applies churn batches flat out. With lock-served reads this
// degraded by the writer's batch occupancy (multi-millisecond
// stalls); with snapshot-served reads the per-read cost stays within
// a small constant of the idle baseline.
func BenchmarkSnapshotReadsBusyWriter(b *testing.B) {
	const n = 4096
	base := graph.StreamedRing(n)
	inst := slackInstance(base)
	s, err := New(base, inst, nil, Options{})
	if err != nil {
		b.Fatal(err)
	}
	script := churnScript(base, 64, 32, 1)
	fillSetLists(script, inst.Space)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = s.ApplyBatch(script[i%len(script)])
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += benchReads(s, i, n)
	}
	b.StopTimer()
	close(stop)
	<-done
	_ = sink
}

// TestBackgroundCompactionSwap pins the off-critical-path compaction
// protocol: the launch batch reports Compacted, the swap happens at
// the next batch boundary (patch count drops to the rows mutated
// since the freeze), and reads through the rebased snapshot stay
// correct.
func TestBackgroundCompactionSwap(t *testing.T) {
	base := graph.StreamedRing(64)
	s := mustService(t, base, palInstance(64, 5), Options{CompactThreshold: 8})

	var launched bool
	for i := 0; i < 12 && !launched; i++ {
		u := (3 * i) % 64
		rep, err := s.ApplyBatch([]Op{
			{Action: OpAddEdge, U: u, V: (u + 5) % 64},
			{Action: OpAddEdge, U: (u + 11) % 64, V: (u + 17) % 64},
		})
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		launched = rep.Compacted
	}
	if !launched {
		t.Fatal("compaction never launched")
	}
	if got := s.Stats().Compactions; got != 1 {
		t.Fatalf("Compactions = %d, want 1", got)
	}
	patchedAtLaunch := s.Stats().Patched
	if patchedAtLaunch <= 8 {
		t.Fatalf("patched = %d at launch, want > threshold", patchedAtLaunch)
	}

	// The next batch blocks on the builder, rebases, and the patch map
	// keeps only the rows this batch (and any post-freeze churn)
	// touched.
	if _, err := s.ApplyBatch([]Op{{Action: OpAddEdge, U: 1, V: 30}}); err != nil {
		t.Fatalf("swap batch: %v", err)
	}
	if got := s.Stats().Patched; got >= patchedAtLaunch {
		t.Fatalf("patched = %d after swap, want < %d", got, patchedAtLaunch)
	}
	if !s.HasEdge(1, 30) {
		t.Fatal("post-swap snapshot lost the new edge")
	}
	if !s.HasEdge(0, 5) && !s.HasEdge(3, 8) {
		// edges from the pre-compaction churn must survive the rebase
		t.Fatal("post-swap snapshot lost pre-compaction edges")
	}
	if err := s.ValidateState(); err != nil {
		t.Fatalf("post-swap state invalid: %v", err)
	}
}
