package service

import (
	"math/rand"
	"testing"

	"listcolor/internal/graph"
)

// TestServiceChurnSoakMillion is the acceptance soak: a 10⁶-node
// streamed ring under 10⁵ churn updates applied in batches of 1000,
// with a full conflict scan of the live state after every batch —
// zero validity violations tolerated. It also crosses the compaction
// threshold several times, so overlay → CSR folds happen under load.
// Skipped with -short; tier-1 `go test ./...` runs it (the scale-test
// convention from internal/sim/scale_test.go).
func TestServiceChurnSoakMillion(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node churn soak skipped in -short mode")
	}
	const (
		n         = 1_000_000
		updates   = 100_000
		batchSize = 1000
		space     = 6
	)
	s := mustService(t, graph.StreamedRing(n), palInstance(n, space), Options{CompactThreshold: 50_000})
	if err := s.ValidateState(); err != nil {
		t.Fatalf("initial state: %v", err)
	}

	rng := rand.New(rand.NewSource(1))
	applied := 0
	batches := 0
	maxRounds := 0
	for applied < updates {
		var ops []Op
		for len(ops) < batchSize {
			u, v := rng.Intn(s.N()), rng.Intn(s.N())
			if u == v {
				continue
			}
			switch {
			case s.ov.HasEdge(u, v):
				ops = append(ops, Op{Action: OpRemoveEdge, U: u, V: v})
			case s.ov.Degree(u) < space-2 && s.ov.Degree(v) < space-2:
				ops = append(ops, Op{Action: OpAddEdge, U: u, V: v})
			default:
				continue
			}
		}
		rep, err := s.ApplyBatch(ops)
		if err != nil {
			t.Fatalf("batch %d: %v", batches, err)
		}
		if !rep.Converged {
			t.Fatalf("batch %d did not converge: %+v", batches, rep)
		}
		if rep.Fallbacks != 0 {
			t.Fatalf("batch %d needed %d fallbacks", batches, rep.Fallbacks)
		}
		// The acceptance check: full conflict scan between batches.
		if err := s.ValidateState(); err != nil {
			t.Fatalf("validity violation after batch %d: %v", batches, err)
		}
		applied += rep.Applied
		batches++
		if rep.Rounds > maxRounds {
			maxRounds = rep.Rounds
		}
	}

	st := s.Stats()
	if st.Updates < updates {
		t.Fatalf("stats report %d updates, applied %d", st.Updates, applied)
	}
	if st.Compactions == 0 {
		t.Error("soak never crossed the compaction threshold")
	}
	if st.RecolorLocality > 2.0 {
		t.Errorf("recolor locality %.2f: churn repair is not local", st.RecolorLocality)
	}
	t.Logf("soak: %d updates in %d batches, %.0f upd/s, locality %.3f, max rounds/batch %d, %d compactions, %d hard, %d recolored",
		applied, batches, st.UpdatesPerSec, st.RecolorLocality, maxRounds, st.Compactions, st.HardConflicts, st.Recolored)
}
