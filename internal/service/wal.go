// wal.go is the service's write-ahead log: every ApplyBatch appends
// one checksummed, length-prefixed record — the batch's version plus
// its full op list, rendered in the same canonical varint discipline
// as sim.EncodePayload — to a segment-rotated append-only log BEFORE
// the batch mutates the in-memory state. Replay is therefore exact:
// ApplyBatch is a deterministic function of the op stream (including
// partial application on a rejected op), so checkpoint + WAL replay
// reconstructs colors, counters and topology byte-identically.
//
// Torn writes are a fact of crashes, not an error condition: a record
// whose header, body or trailing CRC was cut short — or whose bytes
// were damaged afterwards — is detected by the length bound and the
// CRC-32C check, and the tail from the first bad byte on is cleanly
// discarded with a typed *WALTailError. Decoding never panics and
// never allocates beyond the input length, mirroring the
// sim.DecodePayload hostile-input contract.
package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// SyncMode is the WAL durability knob (colord -wal-sync).
type SyncMode int

const (
	// SyncOff buffers appends in memory and flushes only on rotation
	// and clean close — fastest, loses the buffered tail on a crash.
	SyncOff SyncMode = iota
	// SyncBatch writes each record through to the OS per batch (the
	// default): a process crash loses nothing, an OS crash can lose
	// the unsynced tail.
	SyncBatch
	// SyncAlways fsyncs after every record: a batch is reported
	// applied only once its record is on stable storage.
	SyncAlways
)

// String renders the colord flag spelling.
func (m SyncMode) String() string {
	switch m {
	case SyncOff:
		return "off"
	case SyncBatch:
		return "batch"
	case SyncAlways:
		return "always"
	}
	return fmt.Sprintf("SyncMode(%d)", int(m))
}

// ParseSyncMode parses the colord -wal-sync flag value.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "off":
		return SyncOff, nil
	case "batch":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	}
	return 0, fmt.Errorf("service: unknown wal sync mode %q (want off|batch|always)", s)
}

// ErrWALCrashed is returned by a Durable whose WAL writer hit an
// unrecoverable append failure (a real I/O error, or an armed chaos
// crash): the in-memory state may be ahead of the log, so the service
// refuses further writes until it is reopened through recovery.
var ErrWALCrashed = errors.New("service: wal writer crashed")

// ErrWALRecord wraps WAL record payload decoding failures — corrupted
// or truncated bytes decode to an error, never a panic.
var ErrWALRecord = errors.New("service: bad wal record")

// WAL tail-discard reasons, one per torn-write class.
const (
	// TornShortHeader: the segment ends inside a record's length
	// prefix (or the prefix is malformed).
	TornShortHeader = "short header"
	// TornShortBody: the length prefix declares more payload bytes
	// than remain in the segment.
	TornShortBody = "short body"
	// TornShortCRC: the payload is complete but the trailing checksum
	// was cut short — the partial-final-record class.
	TornShortCRC = "partial final record"
	// TornBadCRC: the checksum does not match the payload (a torn
	// write inside the body, or post-crash byte damage).
	TornBadCRC = "bad crc"
	// TornBadPayload: the CRC matches but the payload does not decode
	// — damage that happens to preserve the checksum, or a version
	// discontinuity against the records before it.
	TornBadPayload = "bad record payload"
)

// WALTailError reports a discarded WAL tail: everything from Offset in
// Segment on was dropped during replay. It is a recovery *outcome*,
// not a failure — the log up to the torn record is intact and the
// service resumes from there.
type WALTailError struct {
	Segment string // segment file name
	Offset  int64  // byte offset of the first discarded byte
	Reason  string // one of the Torn* classes
	Cause   error  // decode error detail for TornBadPayload, else nil
}

func (e *WALTailError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("service: wal tail discarded at %s+%d: %s: %v", e.Segment, e.Offset, e.Reason, e.Cause)
	}
	return fmt.Sprintf("service: wal tail discarded at %s+%d: %s", e.Segment, e.Offset, e.Reason)
}

func (e *WALTailError) Unwrap() error { return e.Cause }

// Wire tags of the WAL op encoding, one per Op action. Unknown actions
// are rejected at encode time (ApplyBatch would reject them anyway,
// but the log must never carry bytes it cannot replay).
const (
	walTagAddEdge    = 1
	walTagRemoveEdge = 2
	walTagAddNode    = 3
	walTagRemoveNode = 4
	walTagSetList    = 5
	// walTagOpaque carries an op with an action string the codec does
	// not know. ApplyBatch rejects such an op at its index after
	// applying the prefix — logging it verbatim keeps replay
	// byte-identical to the original partial application.
	walTagOpaque = 6
)

// walCRC is CRC-32C (Castagnoli) — hardware-accelerated on amd64/arm64.
var walCRC = crc32.MakeTable(crc32.Castagnoli)

// walSegmentMagic opens every segment file; a reader rejects files
// that do not start with it (discarding them as a torn tail when they
// are the freshly-created last segment a crash left empty).
var walSegmentMagic = []byte("LCWAL001")

// EncodeWALBatch renders (version, ops) into a WAL record payload:
// uvarint version, uvarint op count, then per op a tag byte followed
// by the action's fields as (u)varints — the same canonical varint
// codec discipline as sim.EncodePayload. Every op encodes: unknown
// actions travel under the opaque tag so replay reproduces the same
// rejection at the same index.
func EncodeWALBatch(version uint64, ops []Op) []byte {
	buf := binary.AppendUvarint(nil, version)
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	appendInts := func(b []byte, xs []int) []byte {
		b = binary.AppendUvarint(b, uint64(len(xs)))
		for _, x := range xs {
			b = binary.AppendVarint(b, int64(x))
		}
		return b
	}
	for _, op := range ops {
		switch op.Action {
		case OpAddEdge, OpRemoveEdge:
			tag := byte(walTagAddEdge)
			if op.Action == OpRemoveEdge {
				tag = walTagRemoveEdge
			}
			buf = append(buf, tag)
			buf = binary.AppendVarint(buf, int64(op.U))
			buf = binary.AppendVarint(buf, int64(op.V))
		case OpAddNode:
			buf = append(buf, walTagAddNode)
			buf = appendInts(buf, op.List)
			buf = appendInts(buf, op.Defects)
		case OpRemoveNode:
			buf = append(buf, walTagRemoveNode)
			buf = binary.AppendVarint(buf, int64(op.Node))
		case OpSetList:
			buf = append(buf, walTagSetList)
			buf = binary.AppendVarint(buf, int64(op.Node))
			buf = appendInts(buf, op.List)
			buf = appendInts(buf, op.Defects)
		default:
			buf = append(buf, walTagOpaque)
			buf = binary.AppendUvarint(buf, uint64(len(op.Action)))
			buf = append(buf, op.Action...)
			buf = binary.AppendVarint(buf, int64(op.U))
			buf = binary.AppendVarint(buf, int64(op.V))
			buf = binary.AppendVarint(buf, int64(op.Node))
			buf = appendInts(buf, op.List)
			buf = appendInts(buf, op.Defects)
		}
	}
	return buf
}

// DecodeWALBatch parses a WAL record payload back into (version, ops).
// Arbitrary (corrupted) input yields an error — never a panic and
// never an allocation beyond O(len(data)): declared op and list counts
// are checked against the remaining bytes before any slice is sized,
// the same length-bound discipline as sim.DecodePayload.
func DecodeWALBatch(data []byte) (version uint64, ops []Op, err error) {
	rest := data
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("%w: bad uvarint", ErrWALRecord)
		}
		rest = rest[n:]
		return v, nil
	}
	readVarint := func() (int, error) {
		v, n := binary.Varint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("%w: bad varint", ErrWALRecord)
		}
		rest = rest[n:]
		return int(v), nil
	}
	readInts := func() ([]int, error) {
		n, err := readUvarint()
		if err != nil {
			return nil, err
		}
		// Every element costs ≥ 1 byte: a longer declaration is
		// provably corrupt — reject before allocating.
		if n > uint64(len(rest)) {
			return nil, fmt.Errorf("%w: declared length %d exceeds %d remaining bytes", ErrWALRecord, n, len(rest))
		}
		if n == 0 {
			return nil, nil
		}
		xs := make([]int, n)
		for i := range xs {
			x, err := readVarint()
			if err != nil {
				return nil, err
			}
			xs[i] = x
		}
		return xs, nil
	}
	if version, err = readUvarint(); err != nil {
		return 0, nil, err
	}
	nops, err := readUvarint()
	if err != nil {
		return 0, nil, err
	}
	if nops > uint64(len(rest)) {
		return 0, nil, fmt.Errorf("%w: declared op count %d exceeds %d remaining bytes", ErrWALRecord, nops, len(rest))
	}
	ops = make([]Op, 0, nops)
	for i := uint64(0); i < nops; i++ {
		if len(rest) == 0 {
			return 0, nil, fmt.Errorf("%w: truncated op %d", ErrWALRecord, i)
		}
		tag := rest[0]
		rest = rest[1:]
		var op Op
		switch tag {
		case walTagAddEdge, walTagRemoveEdge:
			op.Action = OpAddEdge
			if tag == walTagRemoveEdge {
				op.Action = OpRemoveEdge
			}
			if op.U, err = readVarint(); err != nil {
				return 0, nil, err
			}
			if op.V, err = readVarint(); err != nil {
				return 0, nil, err
			}
		case walTagAddNode:
			op.Action = OpAddNode
			if op.List, err = readInts(); err != nil {
				return 0, nil, err
			}
			if op.Defects, err = readInts(); err != nil {
				return 0, nil, err
			}
		case walTagRemoveNode:
			op.Action = OpRemoveNode
			if op.Node, err = readVarint(); err != nil {
				return 0, nil, err
			}
		case walTagSetList:
			op.Action = OpSetList
			if op.Node, err = readVarint(); err != nil {
				return 0, nil, err
			}
			if op.List, err = readInts(); err != nil {
				return 0, nil, err
			}
			if op.Defects, err = readInts(); err != nil {
				return 0, nil, err
			}
		case walTagOpaque:
			alen, err := readUvarint()
			if err != nil {
				return 0, nil, err
			}
			if alen > uint64(len(rest)) {
				return 0, nil, fmt.Errorf("%w: declared action length %d exceeds %d remaining bytes", ErrWALRecord, alen, len(rest))
			}
			op.Action = string(rest[:alen])
			rest = rest[alen:]
			switch op.Action {
			case OpAddEdge, OpRemoveEdge, OpAddNode, OpRemoveNode, OpSetList:
				// A known action under the opaque tag is non-canonical:
				// re-encoding would switch tags and drop fields.
				return 0, nil, fmt.Errorf("%w: known action %q under opaque tag", ErrWALRecord, op.Action)
			}
			if op.U, err = readVarint(); err != nil {
				return 0, nil, err
			}
			if op.V, err = readVarint(); err != nil {
				return 0, nil, err
			}
			if op.Node, err = readVarint(); err != nil {
				return 0, nil, err
			}
			if op.List, err = readInts(); err != nil {
				return 0, nil, err
			}
			if op.Defects, err = readInts(); err != nil {
				return 0, nil, err
			}
		default:
			return 0, nil, fmt.Errorf("%w: unknown op tag %d", ErrWALRecord, tag)
		}
		ops = append(ops, op)
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes", ErrWALRecord, len(rest))
	}
	return version, ops, nil
}

// appendWALRecord frames a payload as one on-disk record:
// uvarint(len(payload)) ‖ payload ‖ CRC-32C(payload) little-endian.
func appendWALRecord(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, walCRC))
}

// walSegmentName renders the rotation-ordered segment file name.
func walSegmentName(index int) string { return fmt.Sprintf("wal-%08d.seg", index) }

// listWALSegments returns the data dir's segment file names in
// rotation order.
func listWALSegments(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	names := make([]string, len(matches))
	for i, m := range matches {
		names[i] = filepath.Base(m)
	}
	return names, nil
}

// crashPlan arms a deterministic simulated crash inside the WAL
// writer — the chaos harness's process-kill stand-in. On the armed
// append (0-based count across the writer's lifetime) the writer puts
// only a seed-drawn prefix of the record's bytes on disk and fails
// with ErrWALCrashed, exactly the on-disk image a kill-9 mid-write
// leaves behind.
type crashPlan struct {
	appendIndex int
	draw        uint64 // prefix length = draw % len(record)
}

// walWriter is the append side of the log: one open segment file,
// rotated when it crosses segBytes, with the sync mode deciding how
// far each record is pushed toward stable storage before ApplyBatch
// proceeds.
type walWriter struct {
	dir      string
	sync     SyncMode
	segBytes int64

	f        *os.File
	buf      []byte // pending bytes under SyncOff (flushed on rotate/close)
	index    int    // current segment index
	size     int64  // bytes written to the current segment (incl. magic)
	appends  int    // lifetime append count (crash-plan clock)
	crash    *crashPlan
	segments int   // segments created by this writer
	records  int64 // records appended
	bytes    int64 // record bytes appended (excl. magic)
}

// openWALWriter creates a fresh segment numbered after the existing
// ones and returns the writer positioned at its start.
func openWALWriter(dir string, sync SyncMode, segBytes int64) (*walWriter, error) {
	if segBytes <= 0 {
		segBytes = 16 << 20
	}
	names, err := listWALSegments(dir)
	if err != nil {
		return nil, err
	}
	next := 1
	if len(names) > 0 {
		last := names[len(names)-1]
		if _, err := fmt.Sscanf(last, "wal-%08d.seg", &next); err != nil {
			return nil, fmt.Errorf("service: unparsable wal segment name %q", last)
		}
		next++
	}
	w := &walWriter{dir: dir, sync: sync, segBytes: segBytes, index: next - 1}
	if err := w.rotate(); err != nil {
		return nil, err
	}
	return w, nil
}

// rotate flushes and closes the current segment and opens the next.
func (w *walWriter) rotate() error {
	if w.f != nil {
		if err := w.flush(true); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return err
		}
	}
	w.index++
	f, err := os.OpenFile(filepath.Join(w.dir, walSegmentName(w.index)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(walSegmentMagic); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.size = int64(len(walSegmentMagic))
	w.segments++
	return syncDir(w.dir)
}

// flush pushes buffered SyncOff bytes to the OS; toDisk adds an fsync.
func (w *walWriter) flush(toDisk bool) error {
	if len(w.buf) > 0 {
		if _, err := w.f.Write(w.buf); err != nil {
			return err
		}
		w.buf = w.buf[:0]
	}
	if toDisk {
		return w.f.Sync()
	}
	return nil
}

// append frames and writes one record payload, honoring the sync mode
// and any armed crash plan. The returned error is fatal for the
// writer: the caller must stop appending and go through recovery.
func (w *walWriter) append(payload []byte) error {
	rec := appendWALRecord(nil, payload)
	if w.size+int64(len(rec)) > w.segBytes && w.size > int64(len(walSegmentMagic)) {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	idx := w.appends
	w.appends++
	if w.crash != nil && idx == w.crash.appendIndex {
		// Simulated kill mid-write: flush what a real process would
		// already have handed to the OS, put a prefix of this record on
		// disk, and die. (Under SyncOff the buffered tail is lost too —
		// exactly the semantics the mode trades for speed.)
		prefix := int(w.crash.draw % uint64(len(rec)))
		if w.sync != SyncOff {
			w.f.Write(rec[:prefix])
		} else {
			w.buf = nil // crash drops the unflushed buffer
			w.f.Write(rec[:prefix])
		}
		w.f.Close()
		w.f = nil
		return ErrWALCrashed
	}
	switch w.sync {
	case SyncOff:
		w.buf = append(w.buf, rec...)
	default:
		if err := w.flush(false); err != nil {
			return err
		}
		if _, err := w.f.Write(rec); err != nil {
			return err
		}
		if w.sync == SyncAlways {
			if err := w.f.Sync(); err != nil {
				return err
			}
		}
	}
	w.size += int64(len(rec))
	w.records++
	w.bytes += int64(len(rec))
	return nil
}

// close flushes, fsyncs and closes the current segment.
func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	if err := w.flush(true); err != nil {
		return err
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// abort closes the file handle without flushing buffered bytes — the
// chaos harness's clean "the process is gone" exit.
func (w *walWriter) abort() {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	w.buf = nil
}

// walRecord is one replayable record read back from the log.
type walRecord struct {
	Version uint64
	Ops     []Op
}

// readWALDir replays every segment in rotation order and returns the
// decodable record prefix. A torn or corrupted record ends the replay:
// everything from it on (including all later segments) is discarded
// and described by the returned *WALTailError (nil when the log is
// clean). The error return is for I/O failures only.
func readWALDir(dir string) ([]walRecord, *WALTailError, error) {
	names, err := listWALSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	var out []walRecord
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, err
		}
		recs, tail := readWALSegment(name, data)
		out = append(out, recs...)
		if tail != nil {
			return out, tail, nil
		}
	}
	return out, nil, nil
}

// readWALSegment parses one segment image. It stops at the first torn
// or corrupt record and reports it; a clean segment returns tail=nil.
func readWALSegment(name string, data []byte) ([]walRecord, *WALTailError) {
	if len(data) < len(walSegmentMagic) || string(data[:len(walSegmentMagic)]) != string(walSegmentMagic) {
		return nil, &WALTailError{Segment: name, Offset: 0, Reason: TornShortHeader}
	}
	off := int64(len(walSegmentMagic))
	rest := data[len(walSegmentMagic):]
	var out []walRecord
	for len(rest) > 0 {
		n, hdr := binary.Uvarint(rest)
		if hdr <= 0 {
			return out, &WALTailError{Segment: name, Offset: off, Reason: TornShortHeader}
		}
		if n > uint64(len(rest)-hdr) {
			return out, &WALTailError{Segment: name, Offset: off, Reason: TornShortBody}
		}
		payload := rest[hdr : hdr+int(n)]
		if len(rest)-hdr-int(n) < 4 {
			return out, &WALTailError{Segment: name, Offset: off, Reason: TornShortCRC}
		}
		sum := binary.LittleEndian.Uint32(rest[hdr+int(n):])
		if sum != crc32.Checksum(payload, walCRC) {
			return out, &WALTailError{Segment: name, Offset: off, Reason: TornBadCRC}
		}
		version, ops, err := DecodeWALBatch(payload)
		if err != nil {
			return out, &WALTailError{Segment: name, Offset: off, Reason: TornBadPayload, Cause: err}
		}
		out = append(out, walRecord{Version: version, Ops: ops})
		adv := hdr + int(n) + 4
		rest = rest[adv:]
		off += int64(adv)
	}
	return out, nil
}

// removeWALSegmentsBefore deletes every segment strictly older than
// keepIndex — the post-checkpoint cleanup (all their records are ≤ the
// checkpoint version; replay would skip them anyway, so a crash
// mid-delete is harmless).
func removeWALSegmentsBefore(dir string, keepIndex int) error {
	names, err := listWALSegments(dir)
	if err != nil {
		return err
	}
	for _, name := range names {
		var idx int
		if _, err := fmt.Sscanf(name, "wal-%08d.seg", &idx); err != nil {
			continue
		}
		if idx < keepIndex {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and creates inside it are
// durable (no-op on platforms where directories cannot be synced).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems refuse to fsync directories; the rename
		// itself is still atomic, so degrade silently.
		return nil
	}
	return nil
}
