package service

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// walOpsSample covers every wire tag, including an opaque unknown
// action carrying all fields.
func walOpsSample() []Op {
	return []Op{
		{Action: OpAddEdge, U: 3, V: 7},
		{Action: OpRemoveEdge, U: 7, V: 3},
		{Action: OpAddNode, List: []int{0, 1, 2}, Defects: []int{1, 0, 2}},
		{Action: OpAddNode},
		{Action: OpRemoveNode, Node: 5},
		{Action: OpSetList, Node: 2, List: []int{1, 3}, Defects: []int{0, 0}},
		{Action: "future_op", U: 1, V: 2, Node: 3, List: []int{9}, Defects: []int{1}},
	}
}

// normalizeWALOps maps nil and empty lists to one representative —
// indistinguishable on the wire, same as sim's normalizeInts.
func normalizeWALOps(ops []Op) []Op {
	out := make([]Op, len(ops))
	for i, op := range ops {
		if len(op.List) == 0 {
			op.List = nil
		}
		if len(op.Defects) == 0 {
			op.Defects = nil
		}
		out[i] = op
	}
	return out
}

func TestWALBatchRoundTrip(t *testing.T) {
	ops := walOpsSample()
	payload := EncodeWALBatch(42, ops)
	version, back, err := DecodeWALBatch(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if version != 42 {
		t.Fatalf("version = %d, want 42", version)
	}
	if !reflect.DeepEqual(normalizeWALOps(back), normalizeWALOps(ops)) {
		t.Fatalf("round trip drift:\n got %#v\nwant %#v", back, ops)
	}
	// Empty batch is a valid record too (a heartbeat-style no-op).
	if v, o, err := DecodeWALBatch(EncodeWALBatch(7, nil)); err != nil || v != 7 || len(o) != 0 {
		t.Fatalf("empty batch round trip = (%d, %v, %v)", v, o, err)
	}
}

// TestWALOpaqueTagCanonical pins the canonicality guard: a known
// action smuggled under the opaque tag is rejected, because re-encoding
// it would switch tags and drop fields.
func TestWALOpaqueTagCanonical(t *testing.T) {
	buf := binary.AppendUvarint(nil, 1) // version
	buf = binary.AppendUvarint(buf, 1)  // one op
	buf = append(buf, walTagOpaque)
	buf = binary.AppendUvarint(buf, uint64(len(OpAddEdge)))
	buf = append(buf, OpAddEdge...)
	for i := 0; i < 3; i++ { // U, V, Node
		buf = binary.AppendVarint(buf, 0)
	}
	buf = binary.AppendUvarint(buf, 0) // list
	buf = binary.AppendUvarint(buf, 0) // defects
	if _, _, err := DecodeWALBatch(buf); !errors.Is(err, ErrWALRecord) {
		t.Fatalf("known action under opaque tag decoded: err = %v", err)
	}
}

// writeSegmentImage renders a segment file image holding the given
// record payloads.
func writeSegmentImage(payloads ...[]byte) []byte {
	img := append([]byte(nil), walSegmentMagic...)
	for _, p := range payloads {
		img = appendWALRecord(img, p)
	}
	return img
}

// TestWALTornWriteClasses enumerates every torn-write class the
// crash model can produce and asserts each one discards the tail
// cleanly — the records before the damage still replay, the reason is
// typed, and nothing panics.
func TestWALTornWriteClasses(t *testing.T) {
	rec1 := EncodeWALBatch(1, []Op{{Action: OpAddEdge, U: 0, V: 2}})
	// rec2 is padded past 128 bytes so its length prefix spans two
	// bytes — the only way to tear a header mid-varint.
	bigList := make([]int, 200)
	for i := range bigList {
		bigList[i] = i
	}
	rec2 := EncodeWALBatch(2, []Op{{Action: OpSetList, Node: 1, List: bigList, Defects: make([]int, 200)}})
	clean := writeSegmentImage(rec1, rec2)
	rec1End := len(walSegmentMagic) + len(rec1) + binary.PutUvarint(make([]byte, 10), uint64(len(rec1))) + 4

	// A CRC-valid record whose payload does not decode: damage that
	// happens to be re-checksummed, or a buggy writer.
	garbagePayload := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}
	crcValidGarbage := writeSegmentImage(rec1, garbagePayload)

	cases := []struct {
		name       string
		image      []byte
		wantReason string
		wantRecs   int
	}{
		{"short header: segment ends mid length prefix",
			clean[:rec1End+1], TornShortHeader, 1},
		{"short body: length prefix declares more than remains",
			clean[:rec1End+2+len(rec2)/2], TornShortBody, 1},
		{"partial final record: payload complete, crc cut short",
			clean[:len(clean)-2], TornShortCRC, 1},
		{"bad crc: flipped byte inside the body",
			flipByte(clean, rec1End+10), TornBadCRC, 1},
		{"bad crc: flipped byte inside the checksum",
			flipByte(clean, len(clean)-1), TornBadCRC, 1},
		{"bad payload: crc-valid bytes that do not decode",
			crcValidGarbage, TornBadPayload, 1},
		{"missing magic: empty freshly-created segment",
			nil, TornShortHeader, 0},
		{"missing magic: truncated magic",
			clean[:4], TornShortHeader, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs, tail := readWALSegment("wal-00000001.seg", tc.image)
			if tail == nil {
				t.Fatalf("damage not detected")
			}
			if tail.Reason != tc.wantReason {
				t.Fatalf("reason = %q, want %q (%v)", tail.Reason, tc.wantReason, tail)
			}
			if len(recs) != tc.wantRecs {
				t.Fatalf("surviving records = %d, want %d", len(recs), tc.wantRecs)
			}
			if tc.wantRecs > 0 && recs[0].Version != 1 {
				t.Fatalf("surviving record version = %d", recs[0].Version)
			}
			if !strings.Contains(tail.Error(), tc.wantReason) {
				t.Fatalf("error text %q lacks reason", tail.Error())
			}
		})
	}

	// The clean image replays fully, tail-free.
	recs, tail := readWALSegment("wal-00000001.seg", clean)
	if tail != nil || len(recs) != 2 {
		t.Fatalf("clean segment: recs=%d tail=%v", len(recs), tail)
	}
}

func flipByte(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0x40
	return out
}

// TestWALTailEndsReplayAcrossSegments: a torn record in segment k
// discards every later segment too — replay must never resume past a
// gap.
func TestWALTailEndsReplayAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	seg1 := writeSegmentImage(EncodeWALBatch(1, nil), EncodeWALBatch(2, nil))
	seg2 := writeSegmentImage(EncodeWALBatch(3, nil))
	seg2 = seg2[:len(seg2)-2] // tear segment 2's final record
	seg3 := writeSegmentImage(EncodeWALBatch(4, nil))
	for i, img := range [][]byte{seg1, seg2, seg3} {
		if err := os.WriteFile(filepath.Join(dir, walSegmentName(i+1)), img, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	recs, tail, err := readWALDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if tail == nil || tail.Reason != TornShortCRC || tail.Segment != walSegmentName(2) {
		t.Fatalf("tail = %v", tail)
	}
	if len(recs) != 2 || recs[1].Version != 2 {
		t.Fatalf("replayed %d records past a torn segment", len(recs))
	}
}

// TestWALWriterRotation: a small segment budget rotates the log;
// reading the dir back returns every record in order.
func TestWALWriterRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := openWALWriter(dir, SyncBatch, 256)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := w.append(EncodeWALBatch(uint64(i+1), []Op{{Action: OpAddEdge, U: i, V: i + 1}})); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	if w.segments < 2 {
		t.Fatalf("segments = %d, want rotation", w.segments)
	}
	recs, tail, err := readWALDir(dir)
	if err != nil || tail != nil {
		t.Fatalf("read back: err=%v tail=%v", err, tail)
	}
	if len(recs) != n {
		t.Fatalf("records = %d, want %d", len(recs), n)
	}
	for i, rec := range recs {
		if rec.Version != uint64(i+1) {
			t.Fatalf("record %d version = %d", i, rec.Version)
		}
	}
	// A writer reopened on the same dir continues the numbering; old
	// records stay readable.
	w2, err := openWALWriter(dir, SyncBatch, 256)
	if err != nil {
		t.Fatal(err)
	}
	if w2.index <= w.index {
		t.Fatalf("reopened writer index %d does not continue %d", w2.index, w.index)
	}
	if err := w2.append(EncodeWALBatch(n+1, nil)); err != nil {
		t.Fatal(err)
	}
	if err := w2.close(); err != nil {
		t.Fatal(err)
	}
	recs, tail, err = readWALDir(dir)
	if err != nil || tail != nil || len(recs) != n+1 {
		t.Fatalf("after reopen: recs=%d tail=%v err=%v", len(recs), tail, err)
	}
}

// TestWALSyncOffLosesOnlyBuffer: under SyncOff an abort drops the
// buffered tail but everything flushed by rotation survives.
func TestWALSyncOffLosesOnlyBuffer(t *testing.T) {
	dir := t.TempDir()
	w, err := openWALWriter(dir, SyncOff, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(EncodeWALBatch(1, nil)); err != nil {
		t.Fatal(err)
	}
	if err := w.rotate(); err != nil { // flushes record 1
		t.Fatal(err)
	}
	if err := w.append(EncodeWALBatch(2, nil)); err != nil {
		t.Fatal(err)
	}
	w.abort() // record 2 still buffered: gone
	recs, tail, err := readWALDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Version != 1 {
		t.Fatalf("recs = %+v", recs)
	}
	// The fresh empty segment has its magic (written unbuffered), so
	// there is no torn tail to report.
	if tail != nil {
		t.Fatalf("tail = %v", tail)
	}
}

func TestParseSyncMode(t *testing.T) {
	for _, m := range []SyncMode{SyncOff, SyncBatch, SyncAlways} {
		got, err := ParseSyncMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseSyncMode(%q) = (%v, %v)", m.String(), got, err)
		}
	}
	if _, err := ParseSyncMode("sometimes"); err == nil {
		t.Fatal("ParseSyncMode accepted garbage")
	}
}

// FuzzWALRecordDecode is the WAL-level "corruption never panics"
// contract, mirroring sim's FuzzCorruptedPayloadDecode: arbitrary
// bytes decode to a record or an ErrWALRecord — never a panic, never
// an allocation beyond the input length — and accepted records
// re-encode value-stably.
func FuzzWALRecordDecode(f *testing.F) {
	f.Add(EncodeWALBatch(1, walOpsSample()))
	f.Add(EncodeWALBatch(0, nil))
	f.Add(EncodeWALBatch(1<<40, []Op{{Action: OpSetList, Node: 9, List: []int{0, 1}, Defects: []int{3, 4}}}))
	f.Add([]byte{})
	// Adversarial length prefixes: op and list counts far beyond the
	// input must be rejected by the length bound before any slice is
	// sized.
	f.Add([]byte{0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{0x01, 0x01, walTagAddNode, 0xfe, 0xff, 0xff, 0xff, 0x0f})
	f.Add([]byte{0x01, 0x02, walTagAddEdge, 0x02, 0x04}) // declares 2 ops, carries 1
	f.Fuzz(func(t *testing.T, data []byte) {
		version, ops, err := DecodeWALBatch(data) // must not panic
		if err != nil {
			if !errors.Is(err, ErrWALRecord) {
				t.Fatalf("decode error not ErrWALRecord: %v", err)
			}
			return
		}
		back := EncodeWALBatch(version, ops)
		v2, ops2, err := DecodeWALBatch(back)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if v2 != version || !reflect.DeepEqual(normalizeWALOps(ops2), normalizeWALOps(ops)) {
			t.Fatalf("round trip drift: (%d, %#v) vs (%d, %#v)", version, ops, v2, ops2)
		}
	})
}

// TestWALDecodeAllocationBound pins the hostile-length defense the
// fuzz seeds probe: a declared op count of ~2⁶² with a 10-byte input
// must fail fast, not allocate.
func TestWALDecodeAllocationBound(t *testing.T) {
	hostile := []byte{0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x3f}
	allocs := testing.AllocsPerRun(20, func() {
		DecodeWALBatch(hostile)
	})
	if allocs > 8 {
		t.Fatalf("hostile input cost %.0f allocs", allocs)
	}
	// CRC checksum sanity: the framed record's trailer matches the Go
	// library's Castagnoli over the payload (format pin for external
	// readers).
	payload := EncodeWALBatch(3, nil)
	rec := appendWALRecord(nil, payload)
	sum := binary.LittleEndian.Uint32(rec[len(rec)-4:])
	if sum != crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)) {
		t.Fatal("record trailer is not CRC-32C(payload)")
	}
}
