package sim

// Regression tests for the CONGEST accounting semantics (see router):
// the bandwidth cap and MaxMessageBits are per *sent* message — a
// broadcast is one send, and dropping its deliveries does not un-send
// it — while Messages and TotalBits are per *edge delivery* and skip
// dropped deliveries. Plus the Result merge algebra: per-round
// RoundStats Seq-fold back to the whole-run Result, vertex-disjoint
// runs Par-merge to the union run, and Seq/Par satisfy their monoid
// laws on arbitrary values.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"listcolor/internal/graph"
)

// loudCenter broadcasts one payload from node 0 in Init and stops; all
// other nodes stay silent.
type loudCenter struct{ p Payload }

func (l loudCenter) Init(ctx *Context) []Outgoing {
	if ctx.ID != 0 {
		return nil
	}
	return []Outgoing{{To: Broadcast, Payload: l.p}}
}

func (l loudCenter) Round(ctx *Context, round int, inbox []Message) ([]Outgoing, bool) {
	return nil, true
}

// starNodes builds a K_{1,k} star (center 0) with loudCenter nodes
// broadcasting p.
func starNodes(k int, p Payload) (*Network, []Node) {
	g := graph.New(k + 1)
	for v := 1; v <= k; v++ {
		g.MustAddEdge(0, v)
	}
	nodes := make([]Node, k+1)
	for v := range nodes {
		nodes[v] = loudCenter{p: p}
	}
	return NewNetwork(g), nodes
}

func TestBroadcastDeliveryAccounting(t *testing.T) {
	// Without drops: one broadcast of b bits to k neighbors is one send
	// (MaxMessageBits = b) billed as k edge-deliveries (Messages = k,
	// TotalBits = k·b).
	k := 5
	p := IntPayload{Value: 3, Domain: 1 << 10}
	b := p.SizeBits() // 10
	nw, nodes := starNodes(k, p)
	res, err := Run(nw, nodes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != k || res.TotalBits != k*b || res.MaxMessageBits != b {
		t.Errorf("clean broadcast: got %+v, want Messages=%d TotalBits=%d MaxMessageBits=%d", res, k, k*b, b)
	}
}

func TestFullyDroppedBroadcastConsumesSend(t *testing.T) {
	// Dropping every delivery of the broadcast removes the delivery
	// bits but NOT the send: MaxMessageBits still records the message.
	// (The pre-arena router only updated MaxMessageBits per delivery,
	// so a fully-dropped broadcast vanished from the statistic.)
	p := IntPayload{Value: 3, Domain: 1 << 10}
	for _, d := range AllDrivers() {
		nw, nodes := starNodes(4, p)
		res, err := Run(nw, nodes, Config{
			Driver:      d,
			DropMessage: func(round, from, to int) bool { return from == 0 },
		})
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if res.Messages != 0 || res.TotalBits != 0 {
			t.Errorf("%v: dropped deliveries billed: %+v", d, res)
		}
		if res.MaxMessageBits != p.SizeBits() {
			t.Errorf("%v: MaxMessageBits = %d, want %d (send consumed despite drops)", d, res.MaxMessageBits, p.SizeBits())
		}
	}
}

func TestPartiallyDroppedBroadcastBillsSurvivors(t *testing.T) {
	p := IntPayload{Value: 3, Domain: 1 << 10}
	b := p.SizeBits()
	nw, nodes := starNodes(4, p)
	res, err := Run(nw, nodes, Config{
		DropMessage: func(round, from, to int) bool { return to%2 == 1 }, // drops 2 of 4 leaves
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 2 || res.TotalBits != 2*b || res.MaxMessageBits != b {
		t.Errorf("partial drop: got %+v, want Messages=2 TotalBits=%d MaxMessageBits=%d", res, 2*b, b)
	}
}

func TestCapAppliesToFullyDroppedMessage(t *testing.T) {
	// The CONGEST cap is checked at send time: fault injection cannot
	// hide an oversized message.
	p := IntsPayload{Values: make([]int, 99), Domain: 4} // ≫ 16 bits
	nw, nodes := starNodes(3, p)
	_, err := Run(nw, nodes, Config{
		BandwidthBits: 16,
		DropMessage:   func(round, from, to int) bool { return true },
	})
	if err == nil {
		t.Fatal("oversized fully-dropped broadcast passed the cap")
	}
}

// varySender broadcasts a payload whose size varies with the round, so
// per-round MaxBits actually differs between rounds. Init sends
// nothing, which keeps every send inside some RoundStats window.
type varySender struct{ rounds int }

func (s varySender) Init(ctx *Context) []Outgoing { return nil }

func (s varySender) Round(ctx *Context, round int, inbox []Message) ([]Outgoing, bool) {
	if round > s.rounds {
		return nil, true
	}
	// Size grows then shrinks: rounds 1..k have distinct max sizes.
	n := round % 7
	return []Outgoing{{To: Broadcast, Payload: IntsPayload{Values: make([]int, n), Domain: 4, MaxLen: 8}}}, false
}

func TestRoundStatsSeqFoldReproducesResult(t *testing.T) {
	// Folding the per-round RoundStats with Seq reproduces the
	// whole-run Result exactly — the merge algebra and the per-round
	// accounting agree.
	for _, d := range AllDrivers() {
		g := graph.GNP(17, 0.3, rand.New(rand.NewSource(42)))
		nodes := make([]Node, g.N())
		for v := range nodes {
			nodes[v] = varySender{rounds: 9}
		}
		var folded Result
		res, err := Run(NewNetwork(g), nodes, Config{
			Driver: d,
			OnRound: func(rs RoundStats) {
				folded = Seq(folded, Result{
					Rounds:         1,
					Messages:       rs.Messages,
					TotalBits:      rs.Bits,
					MaxMessageBits: rs.MaxBits,
				})
			},
		})
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if folded != res {
			t.Errorf("%v: Seq-folded per-round stats %+v != whole-run %+v", d, folded, res)
		}
	}
}

func TestParMergesDisjointComponents(t *testing.T) {
	// Running two vertex-disjoint components in one network must yield
	// exactly the Par-merge of running them separately, in either
	// merge order (the components' message sizes are id-independent).
	a, b := graph.Ring(5), graph.Ring(8)
	mk := func(g *graph.Graph, hops int) ([]Node, Result) {
		nodes, _ := newFloodMaxNodes(g.N(), hops)
		res, err := Run(NewNetwork(g), nodes, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return nodes, res
	}
	_, resA := mk(a, 3)
	_, resB := mk(b, 6)

	union := graph.Union(a, b)
	nodes := make([]Node, union.N())
	sink := make([]int, union.N())
	for v := 0; v < union.N(); v++ {
		hops := 3
		if v >= a.N() {
			hops = 6
		}
		nodes[v] = &floodMax{hops: hops, out: &sink[v]}
	}
	resU, err := Run(NewNetwork(union), nodes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := Par(resA, resB); got != resU {
		t.Errorf("Par(A,B) = %+v, union run = %+v", got, resU)
	}
	if got := Par(resB, resA); got != resU {
		t.Errorf("Par(B,A) = %+v, union run = %+v", got, resU)
	}
}

func TestMergeAlgebra(t *testing.T) {
	abs := func(r Result) Result {
		// Keep values non-negative so + and max interact sanely.
		n := func(x int) int {
			if x < 0 {
				return -x
			}
			return x
		}
		return Result{n(r.Rounds), n(r.Messages), n(r.TotalBits), n(r.MaxMessageBits)}
	}
	assoc := func(x, y, z Result) bool {
		x, y, z = abs(x), abs(y), abs(z)
		return Seq(Seq(x, y), z) == Seq(x, Seq(y, z)) &&
			Par(Par(x, y), z) == Par(x, Par(y, z))
	}
	comm := func(x, y Result) bool {
		x, y = abs(x), abs(y)
		return Par(x, y) == Par(y, x) &&
			Seq(x, y) == Seq(y, x) // Seq is commutative on the stats level too
	}
	ident := func(x Result) bool {
		x = abs(x)
		return Seq(x, Result{}) == x && Seq(Result{}, x) == x &&
			Par(x, Result{}) == x && Par(Result{}, x) == x
	}
	sharedFields := func(x, y Result) bool {
		x, y = abs(x), abs(y)
		s, p := Seq(x, y), Par(x, y)
		// The two merge rules may only differ in the round count.
		return s.Messages == p.Messages && s.TotalBits == p.TotalBits &&
			s.MaxMessageBits == p.MaxMessageBits
	}
	for name, f := range map[string]any{
		"assoc": assoc, "comm": comm, "ident": ident, "shared": sharedFields,
	} {
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
