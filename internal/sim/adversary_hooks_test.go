package sim

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"listcolor/internal/graph"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero value", Config{}, true},
		{"lockstep", Config{Driver: Lockstep}, true},
		{"goroutines", Config{Driver: Goroutines}, true},
		{"workers", Config{Driver: Workers}, true},
		{"congest", Config{BandwidthBits: 32, MaxRounds: 100}, true},
		{"negative bandwidth", Config{BandwidthBits: -1}, false},
		{"negative max rounds", Config{MaxRounds: -5}, false},
		{"unknown driver", Config{Driver: Driver(99)}, false},
		{"negative driver", Config{Driver: Driver(-1)}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("Validate() = nil, want error")
				}
				if !errors.Is(err, ErrConfig) {
					t.Fatalf("Validate() = %v, not wrapping ErrConfig", err)
				}
			}
		})
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	// Run surfaces Validate failures before touching the network.
	nodes, _ := newFloodMaxNodes(3, 1)
	_, err := Run(NewNetwork(graph.Path(3)), nodes, Config{BandwidthBits: -8})
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("Run with bad config: err = %v, want ErrConfig", err)
	}
}

// TestHookCallCountContract asserts the documented call-count contract
// with counting predicates, under every driver:
//
//   - DropMessage: exactly once per edge delivery of a sent message;
//   - CorruptMessage: exactly once per NON-dropped delivery;
//   - NodeDown: exactly once per (round, not-yet-terminated node),
//     rounds ≥ 1, ascending node id within a round.
//
// The hooks run on the coordinator/routing goroutine in every driver,
// so the counting maps need no locking — that serialization is itself
// part of the contract under test (the race detector enforces it).
func TestHookCallCountContract(t *testing.T) {
	type edgeKey struct{ round, from, to int }
	n := 9
	g := graph.GNP(n, 0.4, rand.New(rand.NewSource(11)))
	for _, d := range AllDrivers() {
		dropSeen := map[edgeKey]int{}
		corruptSeen := map[edgeKey]int{}
		downSeen := map[edgeKey]int{} // from unused; key is (round, v, 0)
		downOrder := map[int][]int{}  // round -> consult order
		dropped := 0
		cfg := Config{
			Driver: d,
			DropMessage: func(round, from, to int) bool {
				dropSeen[edgeKey{round, from, to}]++
				if (round+from+to)%5 == 0 {
					dropped++
					return true
				}
				return false
			},
			CorruptMessage: func(round, from, to int, p Payload) (Payload, bool) {
				corruptSeen[edgeKey{round, from, to}]++
				return nil, false
			},
			NodeDown: func(round, v int) NodeStatus {
				downSeen[edgeKey{round, v, 0}]++
				downOrder[round] = append(downOrder[round], v)
				return NodeUp
			},
		}
		nodes, _ := newFloodMaxNodes(n, 3)
		res, err := Run(NewNetwork(g), nodes, cfg)
		if err != nil {
			t.Fatalf("driver %v: %v", d, err)
		}
		for k, c := range dropSeen {
			if c != 1 {
				t.Fatalf("driver %v: DropMessage called %d times for %+v", d, c, k)
			}
		}
		for k, c := range corruptSeen {
			if c != 1 {
				t.Fatalf("driver %v: CorruptMessage called %d times for %+v", d, c, k)
			}
			if dropSeen[k] != 1 {
				t.Fatalf("driver %v: CorruptMessage consulted for %+v without a DropMessage consult", d, k)
			}
		}
		// Corrupt consults = drop consults minus actual drops: corruption
		// is only offered messages that survived the drop stage.
		if got, want := len(corruptSeen), len(dropSeen)-dropped; got != want {
			t.Errorf("driver %v: %d corrupt consults, want %d (=%d deliveries - %d drops)",
				d, got, want, len(dropSeen), dropped)
		}
		// Delivered messages == corrupt consults (drops are not billed).
		if res.Messages != len(corruptSeen) {
			t.Errorf("driver %v: Result.Messages = %d, want %d delivered", d, res.Messages, len(corruptSeen))
		}
		for k, c := range downSeen {
			if c != 1 {
				t.Fatalf("driver %v: NodeDown called %d times for round %d node %d", d, c, k.round, k.from)
			}
			if k.round < 1 {
				t.Fatalf("driver %v: NodeDown consulted in round %d; Init must always run", d, k.round)
			}
		}
		if got := len(downOrder[1]); got != n {
			t.Errorf("driver %v: round 1 consulted %d nodes, want all %d", d, got, n)
		}
		for round, order := range downOrder {
			if !sort.IntsAreSorted(order) {
				t.Errorf("driver %v: round %d NodeDown order not ascending: %v", d, round, order)
			}
		}
	}
}

// TestNodeDownedTransient: a downed node loses the round and its inbox
// but keeps state and resumes. Downing ring node 2 for one round delays
// the flood through it without corrupting its final value.
func TestNodeDownedTransient(t *testing.T) {
	n := 7
	g := graph.Ring(n)
	for _, d := range AllDrivers() {
		nodes, results := newFloodMaxNodes(n, n+2) // slack for the lost round
		_, err := Run(NewNetwork(g), nodes, Config{
			Driver: d,
			NodeDown: func(round, v int) NodeStatus {
				if v == 2 && round == 1 {
					return NodeDowned
				}
				return NodeUp
			},
		})
		if err != nil {
			t.Fatalf("driver %v: %v", d, err)
		}
		for v := 0; v < n; v++ {
			if results[v] != n-1 {
				t.Errorf("driver %v: node %d learned %d, want %d after transient outage", d, v, results[v], n-1)
			}
		}
	}
}

// waitAll terminates only after hearing from every neighbor in each of
// its three rounds — a crash-stopped neighbor stalls it forever, so the
// run must end in ErrRoundLimit, identically under every driver.
type waitAll struct{ heard int }

func (w *waitAll) Init(ctx *Context) []Outgoing {
	return []Outgoing{{To: Broadcast, Payload: IntPayload{Value: ctx.ID, Domain: 64}}}
}

func (w *waitAll) Round(ctx *Context, round int, inbox []Message) ([]Outgoing, bool) {
	if len(inbox) == len(ctx.Neighbors) {
		w.heard++
	}
	if w.heard >= 3 {
		return nil, true
	}
	return []Outgoing{{To: Broadcast, Payload: IntPayload{Value: ctx.ID, Domain: 64}}}, false
}

func TestNodeCrashedStallsNeighborsDeterministically(t *testing.T) {
	n := 6
	g := graph.Ring(n)
	crash := func(round, v int) NodeStatus {
		if v == 0 && round >= 2 {
			return NodeCrashed
		}
		return NodeUp
	}
	var errTexts []string
	var results []Result
	for _, d := range AllDrivers() {
		nodes := make([]Node, n)
		for v := range nodes {
			nodes[v] = &waitAll{}
		}
		res, err := Run(NewNetwork(g), nodes, Config{Driver: d, MaxRounds: 30, NodeDown: crash})
		if !errors.Is(err, ErrRoundLimit) {
			t.Fatalf("driver %v: err = %v, want ErrRoundLimit (neighbors of the crashed node stall)", d, err)
		}
		errTexts = append(errTexts, err.Error())
		results = append(results, res)
	}
	for i := 1; i < len(errTexts); i++ {
		if errTexts[i] != errTexts[0] {
			t.Errorf("divergent errors: %q vs %q", errTexts[0], errTexts[i])
		}
		if results[i] != results[0] {
			t.Errorf("divergent stats under crash: %+v vs %+v", results[0], results[i])
		}
	}
	// Sanity: without the crash the protocol terminates cleanly.
	nodes := make([]Node, n)
	for v := range nodes {
		nodes[v] = &waitAll{}
	}
	if _, err := Run(NewNetwork(g), nodes, Config{MaxRounds: 30}); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
}

// TestCorruptionBillsOriginalBits: corrupting every delivery changes
// nothing about the accounting — Messages and TotalBits are billed from
// the sent payload, not the corrupted substitute.
func TestCorruptionBillsOriginalBits(t *testing.T) {
	n := 8
	g := graph.GNP(n, 0.5, rand.New(rand.NewSource(3)))
	clean, _ := newFloodMaxNodes(n, 3)
	resClean, err := Run(NewNetwork(g), clean, Config{MaxRounds: 50})
	if err != nil {
		t.Fatal(err)
	}
	corruptAll := func(round, from, to int, p Payload) (Payload, bool) {
		return Corrupted{Data: []byte{0xff}, Bits: p.SizeBits()}, true
	}
	for _, d := range AllDrivers() {
		nodes, _ := newFloodMaxNodes(n, 3)
		res, err := Run(NewNetwork(g), nodes, Config{Driver: d, MaxRounds: 50, CorruptMessage: corruptAll})
		if err != nil {
			t.Fatalf("driver %v: %v", d, err)
		}
		// floodMax ignores unrecognized payloads, so the round structure
		// is unchanged and the billing must match the clean run exactly.
		if res.Messages != resClean.Messages || res.TotalBits != resClean.TotalBits {
			t.Errorf("driver %v: corrupt-all billed %d msgs/%d bits, clean %d/%d",
				d, res.Messages, res.TotalBits, resClean.Messages, resClean.TotalBits)
		}
	}
}

// TestCrashedNodeBillsNothingAfterCrash: from its crash round on, a
// crashed node sends nothing, so messages from it are never billed.
func TestCrashedNodeBillsNothingAfterCrash(t *testing.T) {
	n := 6
	g := graph.Complete(n)
	fromCrashed := 0
	crashRound := 2
	cfg := Config{
		MaxRounds: 30,
		NodeDown: func(round, v int) NodeStatus {
			if v == 0 && round >= crashRound {
				return NodeCrashed
			}
			return NodeUp
		},
		// DropMessage sees every delivery with the SEND round; use it as
		// a probe for sends from the crashed node at or after its crash
		// round (it never executes those rounds, so none may exist).
		DropMessage: func(round, from, to int) bool {
			if from == 0 && round >= crashRound {
				fromCrashed++
			}
			return false
		},
	}
	for _, d := range AllDrivers() {
		fromCrashed = 0
		nodes, _ := newFloodMaxNodes(n, 4)
		if _, err := Run(NewNetwork(g), nodes, cfg.WithDriver(d)); err != nil {
			t.Fatalf("driver %v: %v", d, err)
		}
		if fromCrashed != 0 {
			t.Errorf("driver %v: %d deliveries from node 0 after its crash round", d, fromCrashed)
		}
	}
}

// TestRoundStatsFoldUnderFaults: the per-round stream still Seq-folds
// to the whole-run Result when drops, corruption, and node faults are
// all active. Uses varySender (init-silent) because init-round sends
// precede the first RoundStats window by design.
func TestRoundStatsFoldUnderFaults(t *testing.T) {
	n := 10
	g := graph.GNP(n, 0.4, rand.New(rand.NewSource(7)))
	for _, d := range AllDrivers() {
		var folded Result
		cfg := Config{
			Driver:      d,
			MaxRounds:   60,
			DropMessage: deterministicDrop(5, 10),
			CorruptMessage: func(round, from, to int, p Payload) (Payload, bool) {
				if (round+from)%4 == 0 {
					return Corrupted{Data: []byte{1}, Bits: p.SizeBits()}, true
				}
				return nil, false
			},
			NodeDown: func(round, v int) NodeStatus {
				if v == 3 && round == 2 {
					return NodeDowned
				}
				return NodeUp
			},
			OnRound: func(rs RoundStats) {
				folded = Seq(folded, Result{
					Rounds:         1,
					Messages:       rs.Messages,
					TotalBits:      rs.Bits,
					MaxMessageBits: rs.MaxBits,
				})
			},
		}
		nodes := make([]Node, n)
		for v := range nodes {
			nodes[v] = varySender{rounds: 6}
		}
		res, err := Run(NewNetwork(g), nodes, cfg)
		if err != nil {
			t.Fatalf("driver %v: %v", d, err)
		}
		if folded != res {
			t.Errorf("driver %v: Seq-folded RoundStats %+v != Result %+v", d, folded, res)
		}
	}
}

// TestDriverEquivalenceUnderNodeFaults extends the fault-equivalence
// property to the new hook axes: random crash/down schedules plus
// corruption must damage all three drivers identically.
func TestDriverEquivalenceUnderNodeFaults(t *testing.T) {
	f := func(seed int64, rawN uint8, rawRate uint8) bool {
		n := int(rawN%18) + 3
		rate := uint64(rawRate%30) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.3, rng)
		status := func(round, v int) NodeStatus {
			x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(round)*0xbf58476d1ce4e5b9 + uint64(v)
			x ^= x >> 30
			x *= 0x94d049bb133111eb
			x ^= x >> 31
			switch {
			case x%100 < rate/2:
				return NodeCrashed
			case x%100 < rate:
				return NodeDowned
			default:
				return NodeUp
			}
		}
		corrupt := func(round, from, to int, p Payload) (Payload, bool) {
			x := uint64(seed) ^ uint64(round*1315423911) ^ uint64(from*2654435761) ^ uint64(to)
			x ^= x >> 16
			if x%10 == 0 {
				return Corrupted{Data: []byte{byte(x)}, Bits: p.SizeBits()}, true
			}
			return nil, false
		}
		cfg := Config{MaxRounds: 40, NodeDown: status, CorruptMessage: corrupt}
		type out struct {
			res     Result
			errText string
			colors  []int
		}
		var outs []out
		for _, d := range AllDrivers() {
			nodes, results := newFloodMaxNodes(n, 4)
			res, err := Run(NewNetwork(g), nodes, cfg.WithDriver(d))
			o := out{res: res, colors: append([]int(nil), results...)}
			if err != nil {
				o.errText = err.Error()
			}
			outs = append(outs, o)
		}
		for _, o := range outs[1:] {
			if o.res != outs[0].res || o.errText != outs[0].errText {
				return false
			}
			for v := range o.colors {
				if o.colors[v] != outs[0].colors[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
