package sim_test

// Round-throughput microbenchmarks for the engine's routing hot path.
// One benchmark op is one protocol round: a single Run executes b.N
// rounds of the chatter protocol (every node broadcasts a fixed-size
// payload each round), so allocs/op is per-round allocation with the
// run's one-time setup (contexts, inbox arena) amortized away. The
// steady-state routing loop is allocation-free: the ring/lockstep
// benchmark must report 0 allocs/op.
//
// The workloads and protocol are shared with `cmd/benchtab -sim`
// (internal/bench/simbench.go), which renders the same measurement as
// BENCH_sim.json.

import (
	"testing"

	"listcolor/internal/bench"
	"listcolor/internal/graph"
	"listcolor/internal/sim"
)

func benchRoundThroughput(b *testing.B, g *graph.Graph, d sim.Driver) {
	nw := sim.NewNetwork(g)
	nodes := bench.ChatterNodes(g.N(), b.N)
	b.ReportAllocs()
	b.ResetTimer()
	res, err := sim.Run(nw, nodes, sim.Config{Driver: d})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if res.Rounds != b.N {
		b.Fatalf("res.Rounds = %d, want b.N = %d", res.Rounds, b.N)
	}
}

func BenchmarkRoundThroughput(b *testing.B) {
	for _, w := range bench.SimWorkloads(false) {
		g := w.Build()
		for _, d := range sim.AllDrivers() {
			d := d
			b.Run(w.Name+"/"+d.String(), func(b *testing.B) {
				benchRoundThroughput(b, g, d)
			})
		}
	}
}

// poolChatter is the list-message variant: every round each node rents
// a Values buffer from a sim.BufferPool, fills it afresh, broadcasts
// it as an *IntsPayload, and recycles the buffer sent two rounds
// earlier (its delivery round is over, and no receiver retains it).
// The two payload boxes are pre-allocated and rotated the same way, so
// steady-state rounds are allocation-free despite building a new list
// message each time.
type poolChatter struct {
	rounds  int
	pool    *sim.BufferPool
	pending [2]*sim.IntsPayload // payloads awaiting recycling, by round parity
	outbox  []sim.Outgoing
	sink    int
}

func (c *poolChatter) Init(ctx *sim.Context) []sim.Outgoing {
	c.outbox = []sim.Outgoing{{To: sim.Broadcast}}
	c.pending[0] = &sim.IntsPayload{Domain: 1 << 16, MaxLen: 4}
	c.pending[1] = &sim.IntsPayload{Domain: 1 << 16, MaxLen: 4}
	return c.send(0)
}

func (c *poolChatter) send(round int) []sim.Outgoing {
	p := c.pending[round%2]
	if p.Values != nil {
		c.pool.Put(p.Values)
	}
	buf := c.pool.Get(4)
	for i := range buf {
		buf[i] = (round + i) % (1 << 16)
	}
	p.Values = buf
	c.outbox[0].Payload = p
	return c.outbox
}

func (c *poolChatter) Round(ctx *sim.Context, round int, inbox []sim.Message) ([]sim.Outgoing, bool) {
	for i := range inbox {
		c.sink += inbox[i].From
	}
	if round >= c.rounds {
		return nil, true
	}
	return c.send(round), false
}

func BenchmarkRoundThroughputPooledLists(b *testing.B) {
	g := graph.Ring(256)
	nw := sim.NewNetwork(g)
	pool := &sim.BufferPool{}
	nodes := make([]sim.Node, g.N())
	for v := range nodes {
		nodes[v] = &poolChatter{rounds: b.N, pool: pool}
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := sim.Run(nw, nodes, sim.Config{})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if res.Rounds != b.N {
		b.Fatalf("res.Rounds = %d, want b.N = %d", res.Rounds, b.N)
	}
}

// staggeredNode finishes at its own fixed round, so a network of them
// has a linearly shrinking active set — the shape of sweep and Linial
// protocols, where most rounds run with a small active tail. The
// benchmark exercises the workers driver's persistent active list:
// per-round cost must track the live tail, not rescan all n nodes.
type staggeredNode struct {
	quit int
	sink int
}

func (s *staggeredNode) Init(ctx *sim.Context) []sim.Outgoing { return nil }

func (s *staggeredNode) Round(ctx *sim.Context, round int, inbox []sim.Message) ([]sim.Outgoing, bool) {
	for i := range inbox {
		s.sink += inbox[i].From
	}
	return nil, round >= s.quit
}

func BenchmarkShrinkingActive(b *testing.B) {
	g := graph.Ring(1024)
	n := g.N()
	for _, d := range []sim.Driver{sim.Lockstep, sim.Workers} {
		d := d
		b.Run(d.String(), func(b *testing.B) {
			nw := sim.NewNetwork(g)
			nodes := make([]sim.Node, n)
			for v := 0; v < n; v++ {
				// Node v quits at round ~(v+1)/n of the horizon; the last
				// node holds out to exactly b.N so res.Rounds == b.N.
				q := (v + 1) * b.N / n
				if q < 1 {
					q = 1
				}
				nodes[v] = &staggeredNode{quit: q}
			}
			b.ReportAllocs()
			b.ResetTimer()
			res, err := sim.Run(nw, nodes, sim.Config{Driver: d})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if res.Rounds != b.N {
				b.Fatalf("res.Rounds = %d, want b.N = %d", res.Rounds, b.N)
			}
		})
	}
}

// BenchmarkBufferPoolContention hammers one shared pool from all Ps
// with a mix of size classes — the workers-driver shape, where
// concurrent nodes rent differently sized payload buffers each round.
// Steady state must be allocation-free: every Get after warmup is a
// pooled hit in its own class.
func BenchmarkBufferPoolContention(b *testing.B) {
	pool := &sim.BufferPool{}
	sizes := []int{4, 16, 64, 256}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			buf := pool.Get(sizes[i%len(sizes)])
			buf[0] = i
			pool.Put(buf)
			i++
		}
	})
}
