package sim

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Corrupted is a payload damaged in transit: the adversary layer
// replaces a delivery's payload with one of these via
// Config.CorruptMessage. Receivers see raw bytes — a protocol's type
// assertion or type switch on the expected payload type fails, so a
// well-formed protocol treats the message as garbage (equivalent to a
// drop) rather than panicking.
//
// Bits preserves the original payload's wire size, so CONGEST
// accounting (which bills the sent payload) and any size-dependent
// receiver logic see the same number either way.
type Corrupted struct {
	Data []byte
	Bits int
}

// SizeBits implements Payload.
func (c Corrupted) SizeBits() int { return c.Bits }

var _ Payload = Corrupted{}

// ErrDecode wraps payload decoding failures: corrupted or truncated
// bytes decode to an error, never a panic.
var ErrDecode = errors.New("sim: payload decode failed")

// LengthBoundError is the typed rejection of a hostile length prefix:
// the input declared a list of Declared elements, but only Remaining
// bytes follow the prefix — since every encoded element costs at least
// one byte, the declaration is provably corrupt. Returning it BEFORE
// sizing any buffer is what bounds the decoder's allocation at
// O(len(data)) regardless of what the prefix claims (a flipped bit can
// otherwise declare a multi-GiB list). It unwraps to ErrDecode, so
// errors.Is(err, ErrDecode) keeps matching.
type LengthBoundError struct {
	Declared  uint64 // element count the varint prefix claims
	Remaining int    // bytes actually left after the prefix
}

func (e *LengthBoundError) Error() string {
	return fmt.Sprintf("sim: payload decode failed: declared length %d exceeds %d remaining bytes", e.Declared, e.Remaining)
}

func (e *LengthBoundError) Unwrap() error { return ErrDecode }

// Wire-format tags of EncodePayload.
const (
	tagInt  = 1
	tagInts = 2
	tagPair = 3
)

// EncodePayload renders one of the engine's standard payload types
// (IntPayload, IntsPayload, PairPayload) into a canonical byte string
// — a tag byte followed by varints — so the adversary can perform real
// bit-flips on the wire image. Protocol-private wrapper types return
// ok=false; the adversary substitutes seeded pseudo-random bytes of
// the same wire size for those.
func EncodePayload(p Payload) ([]byte, bool) {
	switch q := p.(type) {
	case IntPayload:
		buf := []byte{tagInt}
		buf = binary.AppendVarint(buf, int64(q.Value))
		buf = binary.AppendUvarint(buf, uint64(q.Domain))
		return buf, true
	case IntsPayload:
		buf := []byte{tagInts}
		buf = binary.AppendUvarint(buf, uint64(len(q.Values)))
		for _, v := range q.Values {
			buf = binary.AppendVarint(buf, int64(v))
		}
		buf = binary.AppendUvarint(buf, uint64(q.Domain))
		buf = binary.AppendUvarint(buf, uint64(q.MaxLen))
		return buf, true
	case PairPayload:
		buf := []byte{tagPair}
		buf = binary.AppendVarint(buf, int64(q.A))
		buf = binary.AppendVarint(buf, int64(q.B))
		buf = binary.AppendUvarint(buf, uint64(q.DomainA))
		buf = binary.AppendUvarint(buf, uint64(q.DomainB))
		return buf, true
	default:
		return nil, false
	}
}

// DecodePayload parses bytes produced by EncodePayload back into a
// payload value. Arbitrary (corrupted) input yields an error — never a
// panic and never an unbounded allocation: list lengths are checked
// against the remaining input before any buffer is sized.
func DecodePayload(data []byte) (Payload, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty", ErrDecode)
	}
	rest := data[1:]
	readVarint := func() (int64, error) {
		v, n := binary.Varint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("%w: bad varint", ErrDecode)
		}
		rest = rest[n:]
		return v, nil
	}
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("%w: bad uvarint", ErrDecode)
		}
		rest = rest[n:]
		return v, nil
	}
	var out Payload
	switch data[0] {
	case tagInt:
		v, err := readVarint()
		if err != nil {
			return nil, err
		}
		d, err := readUvarint()
		if err != nil {
			return nil, err
		}
		out = IntPayload{Value: int(v), Domain: int(d)}
	case tagInts:
		n, err := readUvarint()
		if err != nil {
			return nil, err
		}
		// Every value costs ≥ 1 byte, so a length beyond the remaining
		// input is corrupt — reject before allocating.
		if n > uint64(len(rest)) {
			return nil, &LengthBoundError{Declared: n, Remaining: len(rest)}
		}
		values := make([]int, n)
		for i := range values {
			v, err := readVarint()
			if err != nil {
				return nil, err
			}
			values[i] = int(v)
		}
		d, err := readUvarint()
		if err != nil {
			return nil, err
		}
		m, err := readUvarint()
		if err != nil {
			return nil, err
		}
		out = IntsPayload{Values: values, Domain: int(d), MaxLen: int(m)}
	case tagPair:
		a, err := readVarint()
		if err != nil {
			return nil, err
		}
		b, err := readVarint()
		if err != nil {
			return nil, err
		}
		da, err := readUvarint()
		if err != nil {
			return nil, err
		}
		db, err := readUvarint()
		if err != nil {
			return nil, err
		}
		out = PairPayload{A: int(a), B: int(b), DomainA: int(da), DomainB: int(db)}
	default:
		return nil, fmt.Errorf("%w: unknown tag %d", ErrDecode, data[0])
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrDecode, len(rest))
	}
	return out, nil
}
