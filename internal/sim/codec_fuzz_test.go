package sim

import (
	"errors"
	"reflect"
	"testing"
)

// FuzzCorruptedPayloadDecode is the "corruption never panics" contract
// at the decoder level: DecodePayload must map ARBITRARY bytes — the
// exact thing the adversary's bit-flips produce — to either a valid
// payload or an ErrDecode, never a panic and never an unbounded
// allocation. Valid decodes must re-encode to the identical bytes
// (the wire format is canonical).
func FuzzCorruptedPayloadDecode(f *testing.F) {
	// Seed corpus: wire images of real solver payload shapes — the
	// color broadcasts, list announcements and pair messages the
	// paper's protocols actually exchange — plus structural edge cases.
	seeds := []Payload{
		IntPayload{Value: 0, Domain: 1},
		IntPayload{Value: 17, Domain: 64},                             // a color broadcast
		IntPayload{Value: -1, Domain: 128},                            // sentinel
		IntsPayload{Values: []int{2, 3, 5, 7}, Domain: 16, MaxLen: 8}, // a residual list
		IntsPayload{Values: nil, Domain: 4, MaxLen: 2},
		PairPayload{A: 3, B: 11, DomainA: 8, DomainB: 32}, // a (color, defect) pair
	}
	for _, p := range seeds {
		data, ok := EncodePayload(p)
		if !ok {
			f.Fatalf("seed payload %#v not encodable", p)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{tagInts, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	// Adversarial length prefixes: declared element counts far beyond
	// the input (a flipped high bit turns a short list into a claimed
	// multi-GiB one). Decode must reject these via the length bound
	// BEFORE sizing any buffer — see TestDecodeLengthPrefixAllocation
	// for the measured allocation ceiling.
	f.Add([]byte{tagInts, 0xfe, 0xff, 0xff, 0xff, 0x0f})                                     // ~4·10⁹ elements, 0 bytes follow
	f.Add([]byte{tagInts, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})      // 2⁶⁴-ish declared count
	f.Add([]byte{tagInts, 0x04, 0x01, 0x02})                                                // declares 4, carries 2
	f.Add(append([]byte{tagInts, 0x03}, 0x02, 0x04, 0x06))                                  // declares 3 = remaining, still truncated (no domain)
	f.Add([]byte{tagInts, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}) // overlong uvarint prefix
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePayload(data) // must not panic
		if err != nil {
			var lbe *LengthBoundError
			if errors.As(err, &lbe) && lbe.Declared <= uint64(lbe.Remaining) {
				t.Fatalf("LengthBoundError with declared %d ≤ remaining %d", lbe.Declared, lbe.Remaining)
			}
			return
		}
		// Canonical round trip: decode ∘ encode is the identity on
		// valid wire images.
		back, ok := EncodePayload(p)
		if !ok {
			t.Fatalf("decoded payload %#v not re-encodable", p)
		}
		p2, err := DecodePayload(back)
		if err != nil {
			t.Fatalf("re-encoded bytes do not decode: %v", err)
		}
		if !reflect.DeepEqual(normalizeInts(p), normalizeInts(p2)) {
			t.Fatalf("round trip drift: %#v vs %#v", p, p2)
		}
	})
}

// normalizeInts maps nil and empty Values to one representative; they
// are indistinguishable on the wire.
func normalizeInts(p Payload) Payload {
	if ip, ok := p.(IntsPayload); ok && len(ip.Values) == 0 {
		ip.Values = nil
		return ip
	}
	return p
}
