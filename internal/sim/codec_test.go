package sim

import (
	"errors"
	"reflect"
	"runtime"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	payloads := []Payload{
		IntPayload{Value: 0, Domain: 1},
		IntPayload{Value: 42, Domain: 64},
		IntPayload{Value: -7, Domain: 100}, // sentinel values are legal on the wire
		IntsPayload{Values: nil, Domain: 8, MaxLen: 4},
		IntsPayload{Values: []int{1, 2, 3}, Domain: 8, MaxLen: 4},
		IntsPayload{Values: []int{0, -1, 1 << 20}, Domain: 1 << 21, MaxLen: 8},
		PairPayload{A: 3, B: 5, DomainA: 10, DomainB: 12},
		PairPayload{A: -1, B: 0, DomainA: 2, DomainB: 2},
	}
	for _, p := range payloads {
		data, ok := EncodePayload(p)
		if !ok {
			t.Fatalf("EncodePayload(%#v) not encodable", p)
		}
		got, err := DecodePayload(data)
		if err != nil {
			t.Fatalf("DecodePayload(%#v bytes): %v", p, err)
		}
		want := p
		// nil and empty slices are wire-identical; normalize.
		if ip, isInts := want.(IntsPayload); isInts && ip.Values == nil {
			ip.Values = []int{}
			want = ip
		}
		if gp, isInts := got.(IntsPayload); isInts && gp.Values == nil {
			gp.Values = []int{}
			got = gp
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip: got %#v, want %#v", got, want)
		}
	}
}

func TestEncodePayloadRejectsPrivateTypes(t *testing.T) {
	if _, ok := EncodePayload(Corrupted{Data: []byte{1}, Bits: 8}); ok {
		t.Error("Corrupted must not be canonically encodable")
	}
	type wrapper struct{ IntPayload }
	if _, ok := EncodePayload(wrapper{IntPayload{Value: 1, Domain: 2}}); ok {
		t.Error("protocol-private wrapper types must not be encodable")
	}
}

func TestDecodePayloadErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"unknown tag", []byte{0x7f}},
		{"tag only", []byte{tagInt}},
		{"truncated varint", []byte{tagInt, 0x80}},
		{"missing domain", append([]byte{tagInt}, 0x04)},
		{"ints length exceeds input", []byte{tagInts, 0xff, 0xff, 0xff, 0xff, 0x0f}},
		{"pair truncated", []byte{tagPair, 0x02, 0x04}},
		{"trailing bytes", append(mustEncode(IntPayload{Value: 1, Domain: 2}), 0x00)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := DecodePayload(tc.data)
			if err == nil {
				t.Fatalf("DecodePayload(%x) = %#v, want error", tc.data, p)
			}
			if !errors.Is(err, ErrDecode) {
				t.Fatalf("err = %v, not wrapping ErrDecode", err)
			}
		})
	}
}

// TestDecodeLengthBoundTyped pins the typed rejection: a hostile
// length prefix yields a *LengthBoundError carrying the declared count
// and the actual remainder, still matching ErrDecode via errors.Is.
func TestDecodeLengthBoundTyped(t *testing.T) {
	data := []byte{tagInts, 0xfe, 0xff, 0xff, 0xff, 0x0f} // ~4·10⁹ elements declared, none present
	_, err := DecodePayload(data)
	var lbe *LengthBoundError
	if !errors.As(err, &lbe) {
		t.Fatalf("err = %v (%T), want *LengthBoundError", err, err)
	}
	if lbe.Declared < 1<<30 || lbe.Remaining != 0 {
		t.Fatalf("LengthBoundError = %+v, want multi-GiB declared count and 0 remaining", lbe)
	}
	if !errors.Is(err, ErrDecode) {
		t.Fatalf("LengthBoundError does not unwrap to ErrDecode: %v", err)
	}
	// An in-bounds declared count whose input truncates after the list
	// (missing domain) is a plain decode error, not a length-bound
	// rejection.
	_, err = DecodePayload([]byte{tagInts, 0x02, 0x02, 0x04})
	if err == nil || errors.As(err, &lbe) {
		t.Fatalf("truncated-but-bounded input: err = %v, want non-length-bound decode error", err)
	}
}

// TestDecodeLengthPrefixAllocation is the allocation bound the fuzz
// corpus's adversarial prefixes rely on: decoding input whose prefix
// declares a multi-GiB list must allocate memory proportional to
// len(data) (the error value and little else), never to the declared
// count. A regression that sizes the buffer before the bounds check
// shows up here as gigabytes per op.
func TestDecodeLengthPrefixAllocation(t *testing.T) {
	hostile := [][]byte{
		{tagInts, 0xfe, 0xff, 0xff, 0xff, 0x0f},
		{tagInts, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
	}
	for _, data := range hostile {
		data := data
		bytesPerOp := testing.AllocsPerRun(100, func() {
			if _, err := DecodePayload(data); err == nil {
				t.Fatal("hostile prefix decoded successfully")
			}
		})
		// AllocsPerRun counts allocations; also bound total bytes via a
		// direct measurement so a single giant make([]int, n) cannot hide
		// behind a small allocation count.
		if bytesPerOp > 8 {
			t.Errorf("decode of %x: %.0f allocs/op, want a handful", data, bytesPerOp)
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < 64; i++ {
			_, _ = DecodePayload(data)
		}
		runtime.ReadMemStats(&after)
		if grown := after.TotalAlloc - before.TotalAlloc; grown > 1<<20 {
			t.Errorf("decode of %x allocated %d bytes over 64 ops, want ≪ declared GiB", data, grown)
		}
	}
}

func mustEncode(p Payload) []byte {
	data, ok := EncodePayload(p)
	if !ok {
		panic("mustEncode: not encodable")
	}
	return data
}

func TestCorruptedSizeBits(t *testing.T) {
	c := Corrupted{Data: []byte{1, 2, 3}, Bits: 17}
	if c.SizeBits() != 17 {
		t.Errorf("SizeBits = %d, want the original wire size 17", c.SizeBits())
	}
}
