package sim

import (
	"errors"
	"reflect"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	payloads := []Payload{
		IntPayload{Value: 0, Domain: 1},
		IntPayload{Value: 42, Domain: 64},
		IntPayload{Value: -7, Domain: 100}, // sentinel values are legal on the wire
		IntsPayload{Values: nil, Domain: 8, MaxLen: 4},
		IntsPayload{Values: []int{1, 2, 3}, Domain: 8, MaxLen: 4},
		IntsPayload{Values: []int{0, -1, 1 << 20}, Domain: 1 << 21, MaxLen: 8},
		PairPayload{A: 3, B: 5, DomainA: 10, DomainB: 12},
		PairPayload{A: -1, B: 0, DomainA: 2, DomainB: 2},
	}
	for _, p := range payloads {
		data, ok := EncodePayload(p)
		if !ok {
			t.Fatalf("EncodePayload(%#v) not encodable", p)
		}
		got, err := DecodePayload(data)
		if err != nil {
			t.Fatalf("DecodePayload(%#v bytes): %v", p, err)
		}
		want := p
		// nil and empty slices are wire-identical; normalize.
		if ip, isInts := want.(IntsPayload); isInts && ip.Values == nil {
			ip.Values = []int{}
			want = ip
		}
		if gp, isInts := got.(IntsPayload); isInts && gp.Values == nil {
			gp.Values = []int{}
			got = gp
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip: got %#v, want %#v", got, want)
		}
	}
}

func TestEncodePayloadRejectsPrivateTypes(t *testing.T) {
	if _, ok := EncodePayload(Corrupted{Data: []byte{1}, Bits: 8}); ok {
		t.Error("Corrupted must not be canonically encodable")
	}
	type wrapper struct{ IntPayload }
	if _, ok := EncodePayload(wrapper{IntPayload{Value: 1, Domain: 2}}); ok {
		t.Error("protocol-private wrapper types must not be encodable")
	}
}

func TestDecodePayloadErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"unknown tag", []byte{0x7f}},
		{"tag only", []byte{tagInt}},
		{"truncated varint", []byte{tagInt, 0x80}},
		{"missing domain", append([]byte{tagInt}, 0x04)},
		{"ints length exceeds input", []byte{tagInts, 0xff, 0xff, 0xff, 0xff, 0x0f}},
		{"pair truncated", []byte{tagPair, 0x02, 0x04}},
		{"trailing bytes", append(mustEncode(IntPayload{Value: 1, Domain: 2}), 0x00)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := DecodePayload(tc.data)
			if err == nil {
				t.Fatalf("DecodePayload(%x) = %#v, want error", tc.data, p)
			}
			if !errors.Is(err, ErrDecode) {
				t.Fatalf("err = %v, not wrapping ErrDecode", err)
			}
		})
	}
}

func mustEncode(p Payload) []byte {
	data, ok := EncodePayload(p)
	if !ok {
		panic("mustEncode: not encodable")
	}
	return data
}

func TestCorruptedSizeBits(t *testing.T) {
	c := Corrupted{Data: []byte{1, 2, 3}, Bits: 17}
	if c.SizeBits() != 17 {
		t.Errorf("SizeBits = %d, want the original wire size 17", c.SizeBits())
	}
}
