package sim

import "fmt"

// AllDrivers lists every execution driver in a stable order:
// Lockstep (the deterministic reference) first, then the concurrent
// drivers that must reproduce it byte-for-byte. Conformance tests and
// command-line tools iterate over this slice instead of hard-coding
// the set, so a new driver is automatically picked up everywhere.
func AllDrivers() []Driver {
	return []Driver{Lockstep, Goroutines, Workers}
}

// String returns the driver's canonical name (the one ParseDriver
// accepts).
func (d Driver) String() string {
	switch d {
	case Lockstep:
		return "lockstep"
	case Goroutines:
		return "goroutines"
	case Workers:
		return "workers"
	default:
		return fmt.Sprintf("driver(%d)", int(d))
	}
}

// ParseDriver maps a canonical driver name to its Driver value.
func ParseDriver(name string) (Driver, error) {
	for _, d := range AllDrivers() {
		if d.String() == name {
			return d, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown driver %q (known: %v)", name, AllDrivers())
}

// WithDriver returns a copy of the config running under d. It exists
// so harnesses can sweep one prepared config across AllDrivers
// without mutating the original.
func (c Config) WithDriver(d Driver) Config {
	c.Driver = d
	return c
}
