package sim

import "testing"

func TestDriverNamesRoundTrip(t *testing.T) {
	for _, d := range AllDrivers() {
		got, err := ParseDriver(d.String())
		if err != nil {
			t.Fatalf("ParseDriver(%q): %v", d.String(), err)
		}
		if got != d {
			t.Errorf("ParseDriver(%q) = %v, want %v", d.String(), got, d)
		}
	}
	if _, err := ParseDriver("bogus"); err == nil {
		t.Error("ParseDriver accepted an unknown name")
	}
}

func TestAllDriversReferenceFirst(t *testing.T) {
	ds := AllDrivers()
	if len(ds) < 3 || ds[0] != Lockstep {
		t.Fatalf("AllDrivers() = %v, want Lockstep first and all three drivers", ds)
	}
}

func TestWithDriver(t *testing.T) {
	base := Config{BandwidthBits: 7}
	got := base.WithDriver(Workers)
	if got.Driver != Workers || got.BandwidthBits != 7 {
		t.Errorf("WithDriver: got %+v", got)
	}
	if base.Driver != 0 {
		t.Error("WithDriver mutated the receiver")
	}
}
