package sim

import (
	"testing"

	"listcolor/internal/graph"
)

func TestDropMessageBlocksFlood(t *testing.T) {
	// Cutting every message out of node n-1 prevents its id from
	// flooding the ring.
	n := 9
	g := graph.Ring(n)
	nodes, results := newFloodMaxNodes(n, n)
	_, err := Run(NewNetwork(g), nodes, Config{
		DropMessage: func(round, from, to int) bool { return from == n-1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n-1; v++ {
		if results[v] == n-1 {
			t.Errorf("node %d learned the max despite the cut", v)
		}
	}
	// Without drops it does flood.
	nodes2, results2 := newFloodMaxNodes(n, n)
	if _, err := Run(NewNetwork(g), nodes2, Config{}); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if results2[v] != n-1 {
			t.Errorf("clean run: node %d missed the max", v)
		}
	}
}

func TestDropMessageRoundScoped(t *testing.T) {
	// Dropping only init-round sends (round 0) delays the flood by one
	// round but does not stop it.
	n := 6
	g := graph.Ring(n)
	nodes, results := newFloodMaxNodes(n, n)
	if _, err := Run(NewNetwork(g), nodes, Config{
		DropMessage: func(round, from, to int) bool { return round == 0 },
	}); err != nil {
		t.Fatal(err)
	}
	// The value still spreads n-1 hops within n rounds minus the lost
	// first round — with hops = n it still covers the ring.
	for v := 0; v < n; v++ {
		if results[v] != n-1 {
			t.Errorf("node %d missed the max after a 1-round outage", v)
		}
	}
}

func TestDropMessageAccounting(t *testing.T) {
	// Dropped messages are not billed.
	n := 4
	g := graph.Complete(n)
	nodesAll, _ := newFloodMaxNodes(n, 1)
	resAll, err := Run(NewNetwork(g), nodesAll, Config{})
	if err != nil {
		t.Fatal(err)
	}
	nodesHalf, _ := newFloodMaxNodes(n, 1)
	resHalf, err := Run(NewNetwork(g), nodesHalf, Config{
		DropMessage: func(round, from, to int) bool { return (from+to)%2 == 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if resHalf.Messages >= resAll.Messages {
		t.Errorf("drops not reflected in accounting: %d vs %d", resHalf.Messages, resAll.Messages)
	}
}
