package sim

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"listcolor/internal/graph"
)

// deterministicDrop builds a pure drop predicate from a seed: the same
// (round, from, to) triple gets the same verdict on every call, in
// every driver.
func deterministicDrop(seed int64, rate int) func(round, from, to int) bool {
	return func(round, from, to int) bool {
		x := uint64(seed) ^ uint64(round)*0x9e3779b97f4a7c15 ^
			uint64(from)*0xbf58476d1ce4e5b9 ^ uint64(to)*0x94d049bb133111eb
		x ^= x >> 31
		x *= 0xd6e8feb86659fd93
		x ^= x >> 27
		return int(x%100) < rate
	}
}

// TestDriverEquivalenceUnderFaults is the determinism property across
// all three drivers WITH fault injection: whatever damage a dropped
// message does, it must do identically under every driver — same
// per-node outputs, same statistics.
func TestDriverEquivalenceUnderFaults(t *testing.T) {
	f := func(seed int64, rawN uint8, rawHops uint8, rawRate uint8) bool {
		n := int(rawN%20) + 3
		hops := int(rawHops%5) + 1
		rate := int(rawRate % 60) // up to 60% loss
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.3, rng)
		nodesA, resA := newFloodMaxNodes(n, hops)
		nodesB, resB := newFloodMaxNodes(n, hops)
		nodesC, resC := newFloodMaxNodes(n, hops)
		cfg := Config{DropMessage: deterministicDrop(seed, rate)}
		ra, errA := Run(NewNetwork(g), nodesA, cfg.WithDriver(Lockstep))
		rb, errB := Run(NewNetwork(g), nodesB, cfg.WithDriver(Goroutines))
		rc, errC := Run(NewNetwork(g), nodesC, cfg.WithDriver(Workers))
		if errA != nil || errB != nil || errC != nil {
			return false // floodMax terminates by round count regardless of drops
		}
		if ra != rb || ra != rc {
			return false
		}
		for v := range resA {
			if resA[v] != resB[v] || resA[v] != resC[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// needy panics when any neighbor's message is missing, like the
// Linial reduction does on violated invariants.
type needy struct{}

func (needy) Init(ctx *Context) []Outgoing {
	return []Outgoing{{To: Broadcast, Payload: IntPayload{Value: ctx.ID, Domain: 64}}}
}

func (needy) Round(ctx *Context, round int, inbox []Message) ([]Outgoing, bool) {
	if len(inbox) < len(ctx.Neighbors) {
		panic("needy: missing neighbor message")
	}
	if round >= 3 {
		return nil, true
	}
	return []Outgoing{{To: Broadcast, Payload: IntPayload{Value: ctx.ID, Domain: 64}}}, false
}

// TestNodePanicRecovered asserts a protocol panic becomes ErrNodePanic
// under every driver — attributed to the same node in the same round —
// instead of crashing the process.
func TestNodePanicRecovered(t *testing.T) {
	g := graph.Ring(8)
	// Drop exactly one message in round 1: node 3's broadcast (sent at
	// init, delivered in round 1) to node 4.
	drop := func(round, from, to int) bool { return round == 0 && from == 3 && to == 4 }
	var errTexts []string
	for _, d := range AllDrivers() {
		nodes := make([]Node, 8)
		for v := range nodes {
			nodes[v] = needy{}
		}
		_, err := Run(NewNetwork(g), nodes, Config{Driver: d, DropMessage: drop})
		if !errors.Is(err, ErrNodePanic) {
			t.Fatalf("driver %v: err = %v, want ErrNodePanic", d, err)
		}
		if !strings.Contains(err.Error(), "node 4 in round 1") {
			t.Errorf("driver %v: error not attributed to node 4 round 1: %v", d, err)
		}
		errTexts = append(errTexts, err.Error())
	}
	for _, s := range errTexts[1:] {
		if s != errTexts[0] {
			t.Errorf("divergent panic errors across drivers: %q vs %q", errTexts[0], s)
		}
	}
}

// TestNodePanicInInit covers the init-time panic path.
func TestNodePanicInInit(t *testing.T) {
	for _, d := range AllDrivers() {
		nodes := []Node{needy{}, panicInit{}, needy{}}
		_, err := Run(NewNetwork(graph.Path(3)), nodes, Config{Driver: d})
		if !errors.Is(err, ErrNodePanic) {
			t.Fatalf("driver %v: err = %v, want ErrNodePanic", d, err)
		}
		if !strings.Contains(err.Error(), "node 1 in init") {
			t.Errorf("driver %v: error not attributed to node 1 init: %v", d, err)
		}
	}
}

// TestSmallestPanickingNodeWins pins the tie-break: when several nodes
// panic in the same round, every driver reports the smallest id.
func TestSmallestPanickingNodeWins(t *testing.T) {
	g := graph.Ring(8)
	drop := func(round, from, to int) bool { return round == 0 && from == 0 }
	// Node 0's init broadcast is lost entirely: both ring neighbors of
	// node 0 (ids 1 and 7) panic in round 1; node 1 must be reported.
	for _, d := range AllDrivers() {
		nodes := make([]Node, 8)
		for v := range nodes {
			nodes[v] = needy{}
		}
		_, err := Run(NewNetwork(g), nodes, Config{Driver: d, DropMessage: drop})
		if !errors.Is(err, ErrNodePanic) {
			t.Fatalf("driver %v: err = %v, want ErrNodePanic", d, err)
		}
		if !strings.Contains(err.Error(), "node 1 in round 1") {
			t.Errorf("driver %v: want node 1 reported, got: %v", d, err)
		}
	}
}

type panicInit struct{}

func (panicInit) Init(ctx *Context) []Outgoing { panic("panicInit") }
func (panicInit) Round(ctx *Context, round int, inbox []Message) ([]Outgoing, bool) {
	return nil, true
}
