package sim

import "listcolor/internal/logstar"

// BitsFor returns the number of bits needed to encode a value drawn
// from a domain of the given size: ⌈log₂(domain)⌉, and at least 1 so
// that even a trivial message has a nonzero wire size.
func BitsFor(domain int) int {
	if domain < 2 {
		return 1
	}
	return logstar.CeilLog2(domain)
}

// IntPayload carries a single integer from a known domain; its wire
// size is BitsFor(Domain). Protocols use it for colors, ids and flags.
type IntPayload struct {
	Value  int
	Domain int
}

// SizeBits implements Payload.
func (p IntPayload) SizeBits() int { return BitsFor(p.Domain) }

var _ Payload = IntPayload{}

// IntsPayload carries a list of integers from a known domain, e.g. the
// candidate color set S_v of the Two-Sweep algorithm. Its wire size is
// len(Values)·BitsFor(Domain) plus a length header.
type IntsPayload struct {
	Values []int
	Domain int
	// MaxLen is the a-priori bound on len(Values) used to size the
	// length header; 0 means use len(Values).
	MaxLen int
}

// SizeBits implements Payload.
func (p IntsPayload) SizeBits() int {
	maxLen := p.MaxLen
	if maxLen < len(p.Values) {
		maxLen = len(p.Values)
	}
	return BitsFor(maxLen+1) + len(p.Values)*BitsFor(p.Domain)
}

var _ Payload = IntsPayload{}

// PairPayload carries two integers from (possibly different) domains,
// e.g. (initial color, chosen color-space index).
type PairPayload struct {
	A, B             int
	DomainA, DomainB int
}

// SizeBits implements Payload.
func (p PairPayload) SizeBits() int { return BitsFor(p.DomainA) + BitsFor(p.DomainB) }

var _ Payload = PairPayload{}
