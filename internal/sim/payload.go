package sim

import (
	"math/bits"
	"sync"

	"listcolor/internal/logstar"
)

// BitsFor returns the number of bits needed to encode a value drawn
// from a domain of the given size: ⌈log₂(domain)⌉, and at least 1 so
// that even a trivial message has a nonzero wire size.
func BitsFor(domain int) int {
	if domain < 2 {
		return 1
	}
	return logstar.CeilLog2(domain)
}

// IntPayload carries a single integer from a known domain; its wire
// size is BitsFor(Domain). Protocols use it for colors, ids and flags.
type IntPayload struct {
	Value  int
	Domain int
}

// SizeBits implements Payload.
func (p IntPayload) SizeBits() int { return BitsFor(p.Domain) }

var _ Payload = IntPayload{}

// IntsPayload carries a list of integers from a known domain, e.g. the
// candidate color set S_v of the Two-Sweep algorithm. Its wire size is
// len(Values)·BitsFor(Domain) plus a length header.
type IntsPayload struct {
	Values []int
	Domain int
	// MaxLen is the a-priori bound on len(Values) used to size the
	// length header; 0 means use len(Values).
	MaxLen int
}

// SizeBits implements Payload.
func (p IntsPayload) SizeBits() int {
	maxLen := p.MaxLen
	if maxLen < len(p.Values) {
		maxLen = len(p.Values)
	}
	return BitsFor(maxLen+1) + len(p.Values)*BitsFor(p.Domain)
}

var _ Payload = IntsPayload{}

// BufferPool recycles []int scratch buffers for payload construction
// (typically IntsPayload.Values), so protocols that assemble a fresh
// list message every round can run allocation-free in steady state.
// The zero value is ready to use and safe for concurrent use by all
// drivers.
//
// Ownership contract: the engine never copies or recycles payloads —
// a delivered Payload is exactly the sender's object, and receivers
// are allowed to retain it. A sender may therefore Put a buffer back
// only when its protocol guarantees no receiver still references it:
// the earliest safe point is the round after the message was
// delivered (send in round r, delivery in r+1, recycle in r+2), and
// only for message types whose receivers do not retain Values across
// rounds.
// BufferPool is a plain freelist rather than a sync.Pool: sync.Pool's
// Put boxes the slice header on every call, which would put one
// allocation per recycled payload back on the hot path the pool exists
// to clear.
//
// Buffers are bucketed by power-of-two capacity class with one lock
// per class, so Get is O(1) instead of a linear first-fit scan over
// every pooled buffer, and concurrent renters of different sizes (the
// workers driver's round fan-out) contend only within their own class.
type BufferPool struct {
	classes [poolClasses]bufferClass
}

// poolClasses covers every capacity a []int can have (cap is a
// positive int, so ⌈log₂ cap⌉ ≤ 63): class c holds buffers with cap
// in [2^c, 2^(c+1)).
const poolClasses = 64

type bufferClass struct {
	mu   sync.Mutex
	free [][]int
}

// sizeClass returns the class whose every buffer can hold n values:
// ceil(log₂ n), so 2^class ≥ n.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Get returns a length-n buffer, reusing a pooled allocation when one
// is available in n's size class. Contents are unspecified. A miss
// allocates at the full class capacity so the buffer re-enters the
// same class on Put regardless of n.
func (bp *BufferPool) Get(n int) []int {
	cls := &bp.classes[sizeClass(n)]
	cls.mu.Lock()
	if last := len(cls.free) - 1; last >= 0 {
		buf := cls.free[last]
		cls.free[last] = nil
		cls.free = cls.free[:last]
		cls.mu.Unlock()
		return buf[:n]
	}
	cls.mu.Unlock()
	return make([]int, n, 1<<sizeClass(n))
}

// Put returns a buffer to the pool, bucketed by its capacity's class
// (⌊log₂ cap⌋, so the class invariant cap ≥ 2^class holds for any
// caller-allocated buffer too). The caller must not use buf (or any
// payload still referencing it) afterwards.
func (bp *BufferPool) Put(buf []int) {
	if cap(buf) == 0 {
		return
	}
	cls := &bp.classes[bits.Len(uint(cap(buf)))-1]
	cls.mu.Lock()
	cls.free = append(cls.free, buf)
	cls.mu.Unlock()
}

// PairPayload carries two integers from (possibly different) domains,
// e.g. (initial color, chosen color-space index).
type PairPayload struct {
	A, B             int
	DomainA, DomainB int
}

// SizeBits implements Payload.
func (p PairPayload) SizeBits() int { return BitsFor(p.DomainA) + BitsFor(p.DomainB) }

var _ Payload = PairPayload{}
