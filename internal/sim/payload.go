package sim

import (
	"sync"

	"listcolor/internal/logstar"
)

// BitsFor returns the number of bits needed to encode a value drawn
// from a domain of the given size: ⌈log₂(domain)⌉, and at least 1 so
// that even a trivial message has a nonzero wire size.
func BitsFor(domain int) int {
	if domain < 2 {
		return 1
	}
	return logstar.CeilLog2(domain)
}

// IntPayload carries a single integer from a known domain; its wire
// size is BitsFor(Domain). Protocols use it for colors, ids and flags.
type IntPayload struct {
	Value  int
	Domain int
}

// SizeBits implements Payload.
func (p IntPayload) SizeBits() int { return BitsFor(p.Domain) }

var _ Payload = IntPayload{}

// IntsPayload carries a list of integers from a known domain, e.g. the
// candidate color set S_v of the Two-Sweep algorithm. Its wire size is
// len(Values)·BitsFor(Domain) plus a length header.
type IntsPayload struct {
	Values []int
	Domain int
	// MaxLen is the a-priori bound on len(Values) used to size the
	// length header; 0 means use len(Values).
	MaxLen int
}

// SizeBits implements Payload.
func (p IntsPayload) SizeBits() int {
	maxLen := p.MaxLen
	if maxLen < len(p.Values) {
		maxLen = len(p.Values)
	}
	return BitsFor(maxLen+1) + len(p.Values)*BitsFor(p.Domain)
}

var _ Payload = IntsPayload{}

// BufferPool recycles []int scratch buffers for payload construction
// (typically IntsPayload.Values), so protocols that assemble a fresh
// list message every round can run allocation-free in steady state.
// The zero value is ready to use and safe for concurrent use by all
// drivers.
//
// Ownership contract: the engine never copies or recycles payloads —
// a delivered Payload is exactly the sender's object, and receivers
// are allowed to retain it. A sender may therefore Put a buffer back
// only when its protocol guarantees no receiver still references it:
// the earliest safe point is the round after the message was
// delivered (send in round r, delivery in r+1, recycle in r+2), and
// only for message types whose receivers do not retain Values across
// rounds.
// BufferPool is a plain freelist rather than a sync.Pool: sync.Pool's
// Put boxes the slice header on every call, which would put one
// allocation per recycled payload back on the hot path the pool exists
// to clear.
type BufferPool struct {
	mu   sync.Mutex
	free [][]int
}

// Get returns a length-n buffer, reusing a pooled allocation when one
// with sufficient capacity is available. Contents are unspecified.
func (bp *BufferPool) Get(n int) []int {
	bp.mu.Lock()
	for i := len(bp.free) - 1; i >= 0; i-- {
		if buf := bp.free[i]; cap(buf) >= n {
			last := len(bp.free) - 1
			bp.free[i] = bp.free[last]
			bp.free[last] = nil
			bp.free = bp.free[:last]
			bp.mu.Unlock()
			return buf[:n]
		}
	}
	bp.mu.Unlock()
	return make([]int, n)
}

// Put returns a buffer to the pool. The caller must not use buf (or
// any payload still referencing it) afterwards.
func (bp *BufferPool) Put(buf []int) {
	if cap(buf) == 0 {
		return
	}
	bp.mu.Lock()
	bp.free = append(bp.free, buf)
	bp.mu.Unlock()
}

// PairPayload carries two integers from (possibly different) domains,
// e.g. (initial color, chosen color-space index).
type PairPayload struct {
	A, B             int
	DomainA, DomainB int
}

// SizeBits implements Payload.
func (p PairPayload) SizeBits() int { return BitsFor(p.DomainA) + BitsFor(p.DomainB) }

var _ Payload = PairPayload{}
