package sim

// Differential tests for the arena router: refRouter below is the
// pre-arena reference implementation (per-message target slice,
// per-round inbox allocation, per-inbox stable sort) upgraded to the
// fixed accounting semantics, kept here as the oracle. The fuzz target
// feeds both routers identical adversarial outbox scripts — stray and
// out-of-range targets, nil payloads, broadcasts on isolated nodes,
// cap-boundary sizes, fault injection — and demands identical errors,
// identical Result fields, and byte-identical delivery order, across
// several rounds so the arena's buffer reuse is exercised.

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"listcolor/internal/graph"
)

// refRouter mirrors the original slice-per-round router.
type refRouter struct {
	nw      *Network
	cfg     Config
	inboxes [][]Message
	res     Result
	round   int
}

func newRefRouter(nw *Network, cfg Config) *refRouter {
	return &refRouter{nw: nw, cfg: cfg, inboxes: make([][]Message, nw.N())}
}

func (r *refRouter) route(v int, outs []Outgoing) error {
	for _, o := range outs {
		bits := 0
		if o.Payload != nil {
			bits = o.Payload.SizeBits()
		}
		if r.cfg.BandwidthBits > 0 && bits > r.cfg.BandwidthBits {
			return fmt.Errorf("%w: node %d sent %d bits (cap %d)", ErrBandwidth, v, bits, r.cfg.BandwidthBits)
		}
		targets := []int{o.To}
		if o.To == Broadcast {
			targets = r.nw.g.Neighbors(v)
		} else if !r.nw.g.HasEdge(v, o.To) {
			return fmt.Errorf("%w: node %d -> %d", ErrNotNeighbor, v, o.To)
		}
		for _, t := range targets {
			if r.cfg.DropMessage != nil && r.cfg.DropMessage(r.round, v, t) {
				continue
			}
			r.inboxes[t] = append(r.inboxes[t], Message{From: v, Payload: o.Payload})
			r.res.Messages++
			r.res.TotalBits += bits
		}
		// Fixed semantics: the send consumes MaxMessageBits even when
		// every delivery is dropped.
		if bits > r.res.MaxMessageBits {
			r.res.MaxMessageBits = bits
		}
	}
	return nil
}

func (r *refRouter) flush() [][]Message {
	in := r.inboxes
	for v := range in {
		sort.SliceStable(in[v], func(i, j int) bool { return in[v][i].From < in[v][j].From })
	}
	r.inboxes = make([][]Message, len(in))
	return in
}

// compareRouters drives the arena router and the reference router with
// the same per-node outbox script for several rounds and asserts
// equivalent behavior. It reports whether an error stopped routing.
func compareRouters(t *testing.T, g *graph.Graph, cfg Config, script [][]Outgoing, rounds int) {
	t.Helper()
	nw := NewNetwork(g)
	arena := newRouter(nw, cfg)
	ref := newRefRouter(nw, cfg)
	for round := 0; round < rounds; round++ {
		arena.round, ref.round = round, round
		for v := 0; v < g.N(); v++ {
			errA := arena.route(v, script[v])
			errB := ref.route(v, script[v])
			if (errA == nil) != (errB == nil) {
				t.Fatalf("round %d node %d: arena err %v, ref err %v", round, v, errA, errB)
			}
			if errA != nil {
				if errA.Error() != errB.Error() {
					t.Fatalf("round %d node %d: error text %q vs %q", round, v, errA, errB)
				}
				if arena.res != ref.res {
					t.Fatalf("round %d node %d: result at error %+v vs %+v", round, v, arena.res, ref.res)
				}
				return
			}
		}
		inA := arena.flush()
		inB := ref.flush()
		for v := range inB {
			if len(inA[v]) != len(inB[v]) {
				t.Fatalf("round %d node %d: inbox sizes %d vs %d", round, v, len(inA[v]), len(inB[v]))
			}
			for i := range inB[v] {
				// DeepEqual, not ==: slice-bearing payloads (IntsPayload)
				// are not comparable with the interface operator.
				if inA[v][i].From != inB[v][i].From || !reflect.DeepEqual(inA[v][i].Payload, inB[v][i].Payload) {
					t.Fatalf("round %d node %d slot %d: %+v vs %+v", round, v, i, inA[v][i], inB[v][i])
				}
			}
		}
		if arena.res != ref.res {
			t.Fatalf("round %d: results diverge: %+v vs %+v", round, arena.res, ref.res)
		}
	}
}

// buildScript decodes fuzz bytes into a topology, config and per-node
// outbox script. The decoding deliberately produces protocol
// violations: targets may be non-neighbors, out of range, or negative;
// payloads may be nil or sit exactly on the bandwidth cap.
func buildScript(data []byte) (*graph.Graph, Config, [][]Outgoing) {
	read := func(i int) int {
		if len(data) == 0 {
			return 0
		}
		return int(data[i%len(data)])
	}
	n := read(0)%9 + 1
	g := graph.New(n)
	edges := read(1) % 16
	for e := 0; e < edges; e++ {
		u, v := read(2+2*e)%n, read(3+2*e)%n
		if u != v {
			g.MustAddEdge(u, v)
		}
	}
	g.Normalize()
	cfg := Config{}
	if read(40)%2 == 1 {
		cfg.BandwidthBits = 8 + read(41)%8
	}
	if read(42)%3 == 0 {
		m := read(43)%5 + 2
		cfg.DropMessage = func(round, from, to int) bool {
			return (round*31+from*7+to)%m == 0
		}
	}
	script := make([][]Outgoing, n)
	for v := 0; v < n; v++ {
		k := read(50+v) % 4
		for j := 0; j < k; j++ {
			b := read(60 + 3*v + j)
			var to int
			switch b % 5 {
			case 0:
				to = Broadcast
			case 1:
				to = b % (n + 2) // possibly out of range
			case 2:
				to = -2 - b%3 // negative non-broadcast
			default:
				to = b % n
			}
			var p Payload
			switch read(90+3*v+j) % 4 {
			case 0:
				// nil payload
			case 1:
				p = IntPayload{Value: b % 8, Domain: 1 << (1 + b%10)}
			case 2:
				// Exactly on / next to a 8..16-bit cap boundary.
				p = IntsPayload{Values: make([]int, 5+b%8), Domain: 2}
			default:
				p = PairPayload{A: 1, B: 2, DomainA: 1 << (b % 6), DomainB: 4}
			}
			script[v] = append(script[v], Outgoing{To: to, Payload: p})
		}
	}
	return g, cfg, script
}

func FuzzRouteEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0})                       // single isolated node
	f.Add(bytes.Repeat([]byte{7}, 64))                 // ring-ish clutter
	f.Add([]byte{5, 4, 0, 1, 1, 2, 2, 3, 3, 4, 255})   // path + broadcasts
	f.Add([]byte{3, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4})  // isolated nodes, sends
	f.Add([]byte{8, 15, 0, 1, 0, 2, 0, 3, 4, 5, 6, 7}) // star + stray targets
	f.Fuzz(func(t *testing.T, data []byte) {
		g, cfg, script := buildScript(data)
		compareRouters(t, g, cfg, script, 4)
	})
}

// TestRouteAdversarialCases pins the corner cases the fuzz decoder may
// take a while to hit: broadcast on an isolated node, nil payloads on
// real edges, exact cap-boundary sizes, and stray targets, with and
// without fault injection.
func TestRouteAdversarialCases(t *testing.T) {
	drop := func(round, from, to int) bool { return (from+to)%2 == 0 }
	capPayload := IntsPayload{Values: make([]int, 12), Domain: 2} // 4-bit header + 12 = 16 bits
	if capPayload.SizeBits() != 16 {
		t.Fatalf("cap payload sizing drifted: %d", capPayload.SizeBits())
	}
	over := IntsPayload{Values: make([]int, 13), Domain: 2} // 17 bits
	cases := []struct {
		name   string
		build  func() *graph.Graph
		cfg    Config
		script func(n int) [][]Outgoing
	}{
		{
			name:  "broadcast on isolated node",
			build: func() *graph.Graph { return graph.New(3) }, // no edges at all
			script: func(n int) [][]Outgoing {
				return [][]Outgoing{
					{{To: Broadcast, Payload: IntPayload{Value: 1, Domain: 4}}},
					nil,
					{{To: Broadcast, Payload: nil}},
				}
			},
		},
		{
			name:  "nil payloads on real edges",
			build: func() *graph.Graph { return graph.Ring(5) },
			script: func(n int) [][]Outgoing {
				s := make([][]Outgoing, n)
				for v := 0; v < n; v++ {
					s[v] = []Outgoing{{To: Broadcast}, {To: (v + 1) % n}}
				}
				return s
			},
		},
		{
			name:  "exact cap boundary passes",
			build: func() *graph.Graph { return graph.Complete(4) },
			cfg:   Config{BandwidthBits: 16},
			script: func(n int) [][]Outgoing {
				s := make([][]Outgoing, n)
				for v := 0; v < n; v++ {
					s[v] = []Outgoing{{To: Broadcast, Payload: capPayload}}
				}
				return s
			},
		},
		{
			name:  "one over cap fails identically",
			build: func() *graph.Graph { return graph.Complete(4) },
			cfg:   Config{BandwidthBits: 16},
			script: func(n int) [][]Outgoing {
				s := make([][]Outgoing, n)
				for v := 0; v < n; v++ {
					s[v] = []Outgoing{{To: Broadcast, Payload: capPayload}}
				}
				s[2] = []Outgoing{{To: 3, Payload: over}}
				return s
			},
		},
		{
			name:  "stray and out-of-range targets",
			build: func() *graph.Graph { return graph.Path(4) },
			script: func(n int) [][]Outgoing {
				return [][]Outgoing{
					{{To: 1, Payload: IntPayload{Value: 0, Domain: 2}}},
					{{To: 3, Payload: IntPayload{Value: 0, Domain: 2}}}, // not a neighbor
					{{To: 99, Payload: nil}},                            // out of range
					{{To: -5, Payload: nil}},                            // negative non-broadcast
				}
			},
		},
		{
			name:  "cap applies to fully dropped broadcast",
			build: func() *graph.Graph { return graph.Ring(4) },
			cfg:   Config{BandwidthBits: 16, DropMessage: func(round, from, to int) bool { return true }},
			script: func(n int) [][]Outgoing {
				s := make([][]Outgoing, n)
				s[0] = []Outgoing{{To: Broadcast, Payload: over}}
				return s
			},
		},
		{
			name:  "fault injection parity",
			build: func() *graph.Graph { return graph.GNP(8, 0.4, rand.New(rand.NewSource(5))) },
			cfg:   Config{DropMessage: drop},
			script: func(n int) [][]Outgoing {
				s := make([][]Outgoing, n)
				for v := 0; v < n; v++ {
					s[v] = []Outgoing{{To: Broadcast, Payload: IntPayload{Value: v % 4, Domain: 16}}}
				}
				return s
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build()
			compareRouters(t, g, tc.cfg, tc.script(g.N()), 4)
		})
	}
}

// TestArenaInboxOverflow exercises the arena's escape hatch: a
// protocol sending two messages over the same edge in one round
// overflows the receiver's deg-sized slot, which must promote that
// inbox to a grown slice without corrupting neighboring inboxes or
// diverging from the reference.
func TestArenaInboxOverflow(t *testing.T) {
	g := graph.Path(3)
	script := [][]Outgoing{
		{{To: 1, Payload: IntPayload{Value: 0, Domain: 4}}, {To: 1, Payload: IntPayload{Value: 1, Domain: 4}}, {To: 1, Payload: IntPayload{Value: 2, Domain: 4}}},
		{{To: Broadcast, Payload: IntPayload{Value: 3, Domain: 4}}},
		{{To: 1, Payload: IntPayload{Value: 0, Domain: 4}}},
	}
	compareRouters(t, g, Config{}, script, 5)
}
