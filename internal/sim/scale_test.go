package sim_test

// Scale-regression tier (docs/TESTING.md §Scale tests): million-node
// streamed-CSR instances through the real engine, asserting the three
// properties the web-scale path promises — sharded execution is
// bit-identical to sequential, the steady-state round loop allocates
// nothing (lockstep) or a small n-independent constant (workers), and
// the whole run fits the docs/MEMORY.md budget. All tests here skip
// under -short; the 10⁷-node smoke additionally requires
// LISTCOLOR_SCALE=xl (the scheduled scale-smoke CI job sets it).

import (
	"os"
	"runtime"
	"testing"

	"listcolor/internal/bench"
	"listcolor/internal/graph"
	"listcolor/internal/sim"
)

// scaleDigest is the external-package twin of the shard-conformance
// digest protocol: order-sensitive fold of every delivery, broadcast
// every round (allocation-free, so it is also usable under the alloc
// assertions if needed).
type scaleDigest struct {
	rounds int
	h      uint64
	outbox []sim.Outgoing
	out    *uint64
}

func (d *scaleDigest) mix(x int) {
	d.h ^= uint64(x) & (1<<20 - 1)
	d.h *= 1099511628211
}

func (d *scaleDigest) Init(ctx *sim.Context) []sim.Outgoing {
	d.h = 14695981039346656037
	d.mix(ctx.ID)
	d.outbox = []sim.Outgoing{{To: sim.Broadcast, Payload: sim.IntPayload{Value: ctx.ID % (1 << 16), Domain: 1 << 16}}}
	return d.outbox
}

func (d *scaleDigest) Round(ctx *sim.Context, round int, inbox []sim.Message) ([]sim.Outgoing, bool) {
	for i := range inbox {
		d.mix(inbox[i].From)
		if p, ok := inbox[i].Payload.(sim.IntPayload); ok {
			d.mix(p.Value)
		}
	}
	if round >= d.rounds {
		*d.out = d.h
		return nil, true
	}
	d.outbox[0].Payload = sim.IntPayload{Value: int(d.h % (1 << 16)), Domain: 1 << 16}
	return d.outbox, false
}

func newScaleDigestNodes(n, rounds int) ([]sim.Node, []uint64) {
	digests := make([]uint64, n)
	nodes := make([]sim.Node, n)
	for v := 0; v < n; v++ {
		nodes[v] = &scaleDigest{rounds: rounds, out: &digests[v]}
	}
	return nodes, digests
}

// foldDigests reduces the per-node digests to one run fingerprint.
func foldDigests(ds []uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, d := range ds {
		h ^= d
		h *= 1099511628211
	}
	return h
}

const scaleN = 1_000_000

// TestScaleShardFingerprintMillion runs the digest protocol on a
// streamed 10⁶-node ring under the lockstep reference and the sharded
// workers driver and demands identical Results and a bit-identical
// run fingerprint for every shard count.
func TestScaleShardFingerprintMillion(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	const rounds = 4
	c := graph.StreamedRing(scaleN)
	refNodes, refDigests := newScaleDigestNodes(scaleN, rounds)
	refRes, err := sim.Run(sim.NewCSRNetwork(c), refNodes, sim.Config{Driver: sim.Lockstep})
	if err != nil {
		t.Fatalf("lockstep: %v", err)
	}
	refFP := foldDigests(refDigests)
	for _, s := range []int{1, 4, 32} {
		nodes, digests := newScaleDigestNodes(scaleN, rounds)
		res, err := sim.Run(sim.NewCSRNetwork(c), nodes, sim.Config{Driver: sim.Workers, Shards: s})
		if err != nil {
			t.Fatalf("shards=%d: %v", s, err)
		}
		if res != refRes {
			t.Errorf("shards=%d: Result = %+v, want %+v", s, res, refRes)
		}
		if fp := foldDigests(digests); fp != refFP {
			t.Errorf("shards=%d: run fingerprint %#x, want %#x", s, fp, refFP)
		}
	}
}

// TestScaleMemoryCeilingMillion asserts the docs/MEMORY.md budget: a
// 10⁶-node streamed ring driven through the sharded workers driver
// must fit the documented ~460 MiB component sum, with a 640 MiB
// ceiling leaving headroom for allocator slack. HeapAlloc is sampled
// at run return, while topology, nodes, contexts, and the inbox arena
// are all still live.
func TestScaleMemoryCeilingMillion(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	c := graph.StreamedRing(scaleN)
	nw := sim.NewCSRNetwork(c)
	nodes := bench.ChatterNodes(scaleN, 3)
	if _, err := sim.Run(nw, nodes, sim.Config{Driver: sim.Workers, Shards: 8}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	runtime.ReadMemStats(&m1)
	runtime.KeepAlive(nw)
	runtime.KeepAlive(nodes)
	const ceiling = 640 << 20
	if used := m1.HeapAlloc - m0.HeapAlloc; used > ceiling {
		t.Errorf("10^6-node ring run used %d MiB of heap, budget ceiling %d MiB (docs/MEMORY.md)",
			used>>20, int64(ceiling)>>20)
	}
}

// runMallocs runs the chatter protocol for the given number of rounds
// on a fresh network over c and returns the mallocs the run performed.
func runMallocs(t *testing.T, c *graph.CSR, cfg sim.Config, rounds int) uint64 {
	t.Helper()
	nw := sim.NewCSRNetwork(c)
	nodes := bench.ChatterNodes(c.N(), rounds)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res, err := sim.Run(nw, nodes, cfg)
	runtime.ReadMemStats(&m1)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Rounds != rounds {
		t.Fatalf("Rounds = %d, want %d", res.Rounds, rounds)
	}
	return m1.Mallocs - m0.Mallocs
}

// TestScaleSteadyStateAllocs asserts the allocation-free round loop at
// 10⁶ nodes by differencing two run lengths: the one-time setup
// (contexts, arena, node outboxes) cancels, leaving pure per-round
// allocation. Lockstep must be exactly allocation-free; the workers
// driver pays only its per-round goroutine spawns — a small constant
// independent of n (a regression to per-delivery allocation would show
// up as ~2·10⁶ allocs/round).
func TestScaleSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	const r1, r2 = 4, 12
	c := graph.StreamedRing(scaleN)
	for _, tc := range []struct {
		name     string
		cfg      sim.Config
		perRound float64 // allowed allocs per steady-state round
	}{
		{"lockstep", sim.Config{Driver: sim.Lockstep}, 1},
		{"workers-sharded", sim.Config{Driver: sim.Workers, Shards: 8}, 64},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a1 := runMallocs(t, c, tc.cfg, r1)
			a2 := runMallocs(t, c, tc.cfg, r2)
			extra := int64(a2) - int64(a1)
			perRound := float64(extra) / float64(r2-r1)
			if perRound > tc.perRound {
				t.Errorf("steady state allocates %.1f/round (%d mallocs over %d extra rounds), want ≤ %v",
					perRound, extra, r2-r1, tc.perRound)
			}
		})
	}
}

// TestScaleTenMillionSmoke is the 10⁷-node tier: build + run must
// complete and stay inside the docs/MEMORY.md ceiling. It needs a few
// GiB of RAM and tens of seconds, so beyond -short it is gated behind
// LISTCOLOR_SCALE=xl, which only the scheduled scale-smoke CI job and
// explicit local invocations set.
func TestScaleTenMillionSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	if os.Getenv("LISTCOLOR_SCALE") != "xl" {
		t.Skip("10^7-node tier: set LISTCOLOR_SCALE=xl to run")
	}
	const n = 10_000_000
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	c := graph.StreamedRing(n)
	if c.N() != n || c.M() != n {
		t.Fatalf("streamed ring: n=%d m=%d", c.N(), c.M())
	}
	nodes, digests := newScaleDigestNodes(n, 2)
	res, err := sim.Run(sim.NewCSRNetwork(c), nodes, sim.Config{Driver: sim.Workers, Shards: 8})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	runtime.ReadMemStats(&m1)
	// Deliveries: round 1 carries the n init broadcasts, round 2 the n
	// round-1 broadcasts; each broadcast reaches 2 ring neighbors.
	if res.Rounds != 2 || res.Messages != 2*2*n {
		t.Errorf("Result = %+v, want 2 rounds of 2·10⁷ deliveries each", res)
	}
	if fp := foldDigests(digests); fp == 0 {
		t.Errorf("degenerate run fingerprint")
	}
	const ceiling = 6 << 30
	if used := m1.HeapAlloc - m0.HeapAlloc; used > ceiling {
		t.Errorf("10^7-node run used %d MiB of heap, ceiling %d MiB (docs/MEMORY.md)",
			used>>20, int64(ceiling)>>20)
	}
}
