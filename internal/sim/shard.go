package sim

// Sharded round routing for the Workers driver: the delivery work of
// one round is split across Config.Shards contiguous receiver ranges
// and executed concurrently, while staying bit-identical to the
// sequential route.
//
// The key observation is that the sequential router's only ordering
// guarantee is per receiving inbox: messages arrive in ascending
// sender id, send order within a sender. Partitioning the RECEIVERS
// gives each shard exclusive ownership of a contiguous slice of the
// inbox arena (the arena mirrors the CSR row layout, so a receiver
// range is a contiguous slot range — the per-shard inbox arena), and
// having every shard scan the full sender sequence in the same
// ascending order reproduces exactly the sequential fill of its own
// inboxes. No locks, no message buffers, no post-hoc sorting.
//
// The round is routed in two phases:
//
//  1. prepare (coordinator, sequential): validate every send
//     (bandwidth cap, neighbor check) and precompute its payload size
//     into reusable scratch. Any protocol violation or node error
//     aborts the sharded path entirely and the driver falls back to
//     the reference sequential loop, which reproduces the exact
//     partial statistics and error text of a sequential run.
//  2. deliver (parallel): each shard walks the prepared sends and
//     appends the deliveries whose receiver falls in its range;
//     broadcasts locate their in-range neighbor run by binary search
//     on the sorted CSR row. Per-shard message/bit counters are merged
//     in fixed shard order afterwards, so totals are deterministic.
//
// Rounds with DropMessage/CorruptMessage hooks never take this path
// (Config.Shards documents the contract); NodeDown is compatible —
// the hook runs on the coordinator before routing, like every driver.

import (
	"sort"
	"sync"
)

// routingShards returns the effective shard count for this config: 1
// (sequential) unless sharding is requested and no delivery hook is
// installed.
func (c Config) routingShards() int {
	if c.Shards <= 1 || c.DropMessage != nil || c.CorruptMessage != nil {
		return 1
	}
	return c.Shards
}

// bounds returns the receiver-range boundaries for s shards, balanced
// by arena slots (degree mass) rather than vertex count so a skewed
// degree distribution cannot pile all delivery work onto one shard.
// Computed once per run and cached; boundaries are a function of the
// topology and s only, never of round content, so every round (and
// every run) shards identically.
func (rt *router) bounds(s int) []int {
	if rt.shardBounds != nil {
		return rt.shardBounds
	}
	n := rt.topo.N()
	if s > n && n > 0 {
		s = n
	}
	if s < 1 {
		s = 1
	}
	b := make([]int, s+1)
	arcs := rt.topo.Arcs()
	v := 0
	for i := 1; i < s; i++ {
		target := arcs * int64(i) / int64(s)
		for v < n && rt.topo.RowStart(v) < target {
			v++
		}
		b[i] = v
	}
	b[s] = n
	rt.shardBounds = b
	return b
}

// prepare validates every send of the round and fills the reusable
// prep scratch (senders, per-send bit sizes, flat offsets). It
// mutates no router output state, so a false return leaves the
// sequential fallback a pristine router. senders must be ascending;
// status (when non-nil) marks the nodes whose sends must not be
// routed this round (downed/crashed under the NodeDown hook).
func (rt *router) prepare(senders []int, status []NodeStatus, outs [][]Outgoing, errs []error) bool {
	rt.prepSenders = rt.prepSenders[:0]
	rt.prepOff = rt.prepOff[:0]
	rt.prepBits = rt.prepBits[:0]
	rt.prepMax = 0
	for _, v := range senders {
		if status != nil && status[v] != NodeUp {
			continue
		}
		if errs != nil && errs[v] != nil {
			return false
		}
		os := outs[v]
		if len(os) == 0 {
			continue
		}
		rt.prepSenders = append(rt.prepSenders, v)
		rt.prepOff = append(rt.prepOff, len(rt.prepBits))
		for i := range os {
			o := &os[i]
			bits := 0
			if o.Payload != nil {
				bits = o.Payload.SizeBits()
			}
			if rt.cfg.BandwidthBits > 0 && bits > rt.cfg.BandwidthBits {
				return false
			}
			if o.To != Broadcast && !rt.topo.HasEdge(v, o.To) {
				return false
			}
			rt.prepBits = append(rt.prepBits, bits)
			if bits > rt.prepMax {
				rt.prepMax = bits
			}
		}
	}
	rt.prepOff = append(rt.prepOff, len(rt.prepBits))
	return true
}

// deliverSharded routes the prepared sends across s receiver shards.
// prepare must have returned true for this round: every send is known
// valid, so delivery cannot fail.
func (rt *router) deliverSharded(outs [][]Outgoing, s int) {
	b := rt.bounds(s)
	s = len(b) - 1
	if cap(rt.shardMsgs) < s {
		rt.shardMsgs = make([]int, s)
		rt.shardBits = make([]int, s)
	}
	msgs, bits := rt.shardMsgs[:s], rt.shardBits[:s]
	var wg sync.WaitGroup
	for sh := 0; sh < s; sh++ {
		lo, hi := b[sh], b[sh+1]
		if lo == hi {
			msgs[sh], bits[sh] = 0, 0
			continue
		}
		wg.Add(1)
		go func(sh, lo, hi int) {
			defer wg.Done()
			m, bt := 0, 0
			for si, v := range rt.prepSenders {
				os := outs[v]
				bo := rt.prepOff[si]
				for i := range os {
					o := &os[i]
					sb := rt.prepBits[bo+i]
					if o.To == Broadcast {
						row := rt.topo.Row(v)
						j := sort.SearchInts(row, lo)
						for ; j < len(row) && row[j] < hi; j++ {
							t := row[j]
							rt.next[t] = append(rt.next[t], Message{From: v, Payload: o.Payload})
							m++
							bt += sb
						}
					} else if o.To >= lo && o.To < hi {
						rt.next[o.To] = append(rt.next[o.To], Message{From: v, Payload: o.Payload})
						m++
						bt += sb
					}
				}
			}
			msgs[sh], bits[sh] = m, bt
		}(sh, lo, hi)
	}
	wg.Wait()
	for sh := 0; sh < s; sh++ {
		rt.res.Messages += msgs[sh]
		rt.res.TotalBits += bits[sh]
	}
	if rt.prepMax > rt.res.MaxMessageBits {
		rt.res.MaxMessageBits = rt.prepMax
	}
	if rt.prepMax > rt.roundMax {
		rt.roundMax = rt.prepMax
	}
}
