package sim

import (
	"errors"
	"math/rand"
	"runtime"
	"testing"

	"listcolor/internal/graph"
)

// digestChatter is the shard-conformance protocol: it folds every
// received message into an order-sensitive 64-bit digest (so any
// deviation in per-inbox delivery order, content, or sender
// attribution changes the final state) and alternates broadcast rounds
// with unicast rounds targeting a digest-dependent subset of
// neighbors — the traffic mix the sharded router must reproduce
// bit-for-bit, including receivers that straddle shard boundaries.
type digestChatter struct {
	rounds int
	h      uint64
	out    *uint64
}

const digestDomain = 1 << 20

func (d *digestChatter) mix(x int) {
	d.h ^= uint64(x) & (1<<20 - 1)
	d.h *= 1099511628211
}

func (d *digestChatter) sends(ctx *Context, round int) []Outgoing {
	val := IntPayload{Value: int(d.h % digestDomain), Domain: digestDomain}
	if round%2 == 0 {
		return []Outgoing{{To: Broadcast, Payload: val}}
	}
	var outs []Outgoing
	for i, w := range ctx.Neighbors {
		if (d.h>>(uint(i)%8))&1 == 1 {
			outs = append(outs, Outgoing{To: w, Payload: val})
		}
	}
	return outs
}

func (d *digestChatter) Init(ctx *Context) []Outgoing {
	d.h = 14695981039346656037
	d.mix(ctx.ID)
	return d.sends(ctx, 0)
}

func (d *digestChatter) Round(ctx *Context, round int, inbox []Message) ([]Outgoing, bool) {
	for _, m := range inbox {
		d.mix(m.From)
		if p, ok := m.Payload.(IntPayload); ok {
			d.mix(p.Value)
		}
	}
	d.mix(round)
	if round >= d.rounds {
		*d.out = d.h
		return nil, true
	}
	return d.sends(ctx, round), false
}

func newDigestNodes(n, rounds int) ([]Node, []uint64) {
	digests := make([]uint64, n)
	nodes := make([]Node, n)
	for v := 0; v < n; v++ {
		nodes[v] = &digestChatter{rounds: rounds, out: &digests[v]}
	}
	return nodes, digests
}

// shardSweepGraphs are the topologies the sweep runs on: a ring (every
// shard boundary cuts through uniform degree-2 rows), a G(n,p) with
// irregular degrees, and a star whose hub's broadcast spans every
// shard at once.
func shardSweepGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	gnp := graph.GNP(96, 0.08, rand.New(rand.NewSource(5)))
	star := graph.New(33)
	for v := 1; v < 33; v++ {
		star.MustAddEdge(0, v)
	}
	return map[string]*graph.Graph{
		"ring257": graph.Ring(257),
		"gnp96":   gnp,
		"star33":  star,
	}
}

// TestShardSweepFingerprints sweeps shard counts — including 1 (the
// sequential baseline), the degenerate n and beyond-n cases, and
// GOMAXPROCS — and demands byte-identical Results and node digests
// against the Lockstep reference for every count. Run under -race in
// CI with -count 2 (satellite: shard-boundary race tests).
func TestShardSweepFingerprints(t *testing.T) {
	const rounds = 9
	for name, g := range shardSweepGraphs(t) {
		t.Run(name, func(t *testing.T) {
			n := g.N()
			refNodes, refDigests := newDigestNodes(n, rounds)
			refRes, err := Run(NewNetwork(g), refNodes, Config{Driver: Lockstep})
			if err != nil {
				t.Fatalf("lockstep: %v", err)
			}
			shardCounts := []int{0, 1, 2, 3, 7, runtime.GOMAXPROCS(0), n, 3 * n}
			for _, s := range shardCounts {
				nodes, digests := newDigestNodes(n, rounds)
				res, err := Run(NewNetwork(g), nodes, Config{Driver: Workers, Shards: s})
				if err != nil {
					t.Fatalf("shards=%d: %v", s, err)
				}
				if res != refRes {
					t.Errorf("shards=%d: Result = %+v, want %+v", s, res, refRes)
				}
				for v := range digests {
					if digests[v] != refDigests[v] {
						t.Fatalf("shards=%d: node %d digest %#x, want %#x", s, v, digests[v], refDigests[v])
					}
				}
			}
		})
	}
}

// TestShardedErrorFallback checks that a round containing a protocol
// violation or node error takes the sequential fallback and reproduces
// the exact error and partial Result of an unsharded run.
func TestShardedErrorFallback(t *testing.T) {
	t.Run("non-neighbor", func(t *testing.T) {
		mk := func() []Node {
			return []Node{straySender{target: 3}, straySender{target: 0}, straySender{target: 1}, straySender{target: 2}}
		}
		g := graph.Path(4)
		seqRes, seqErr := Run(NewNetwork(g), mk(), Config{Driver: Workers})
		shRes, shErr := Run(NewNetwork(g), mk(), Config{Driver: Workers, Shards: 4})
		if !errors.Is(shErr, ErrNotNeighbor) {
			t.Fatalf("err = %v, want ErrNotNeighbor", shErr)
		}
		if seqErr == nil || shErr.Error() != seqErr.Error() || shRes != seqRes {
			t.Errorf("sharded (%v, %+v) != sequential (%v, %+v)", shErr, shRes, seqErr, seqRes)
		}
	})
	t.Run("bandwidth", func(t *testing.T) {
		mk := func() []Node { return []Node{bigSender{}, bigSender{}, bigSender{}, bigSender{}} }
		g := graph.Ring(4)
		cfg := Config{Driver: Workers, BandwidthBits: 64}
		seqRes, seqErr := Run(NewNetwork(g), mk(), cfg)
		cfg.Shards = 3
		shRes, shErr := Run(NewNetwork(g), mk(), cfg)
		if !errors.Is(shErr, ErrBandwidth) {
			t.Fatalf("err = %v, want ErrBandwidth", shErr)
		}
		if seqErr == nil || shErr.Error() != seqErr.Error() || shRes != seqRes {
			t.Errorf("sharded (%v, %+v) != sequential (%v, %+v)", shErr, shRes, seqErr, seqRes)
		}
	})
}

// panicAt wraps a protocol node: the node with the given id panics at
// the given round (surfacing as ErrNodePanic through safeRound), and
// behaves as the inner protocol everywhere else.
type panicAt struct {
	Node
	id, round int
}

func (p panicAt) Round(ctx *Context, round int, inbox []Message) ([]Outgoing, bool) {
	if ctx.ID == p.id && round == p.round {
		panic("injected fault")
	}
	return p.Node.Round(ctx, round, inbox)
}

// TestShardedErrorFallbackStatsParity is the regression for the
// validation-prepass fallback under combined faults: a node error in a
// LATE shard (high receiver range) during a round whose NodeDown crash
// window is active must reproduce the sequential driver's run exactly —
// same final Result, same error text, and the same per-round RoundStats
// stream (ActiveNodes under downs/crashes, message/bit deltas, MaxBits)
// right up to the aborted round, which reports stats in neither driver.
func TestShardedErrorFallbackStatsParity(t *testing.T) {
	const (
		n        = 96
		rounds   = 9
		errNode  = 90 // lives in the last of 6 receiver shards
		errRound = 6
	)
	down := func(round, v int) NodeStatus {
		switch {
		case round == 4 && v%9 == 0:
			return NodeDowned
		case round == errRound && v == 17:
			return NodeDowned // down window active in the aborted round
		case round == errRound && v == 40:
			return NodeCrashed // crash window active in the aborted round
		case round == errRound && v == 95:
			return NodeCrashed // crashes beyond the erroring node too
		}
		return NodeUp
	}
	type runOutcome struct {
		res   Result
		stats []RoundStats
		err   error
	}
	do := func(cfg Config) runOutcome {
		var out runOutcome
		cfg.NodeDown = down
		cfg.OnRound = func(rs RoundStats) { out.stats = append(out.stats, rs) }
		nodes, _ := newDigestNodes(n, rounds)
		for v := range nodes {
			nodes[v] = panicAt{Node: nodes[v], id: errNode, round: errRound}
		}
		out.res, out.err = Run(NewNetwork(graph.Ring(n)), nodes, cfg)
		return out
	}

	ref := do(Config{Driver: Lockstep})
	if !errors.Is(ref.err, ErrNodePanic) {
		t.Fatalf("lockstep err = %v, want ErrNodePanic", ref.err)
	}
	if len(ref.stats) != errRound-1 {
		t.Fatalf("lockstep reported %d rounds of stats, want %d (aborted round unreported)", len(ref.stats), errRound-1)
	}
	for name, cfg := range map[string]Config{
		"workers-sequential": {Driver: Workers},
		"workers-sharded":    {Driver: Workers, Shards: 6},
		"workers-overshard":  {Driver: Workers, Shards: n},
	} {
		t.Run(name, func(t *testing.T) {
			got := do(cfg)
			if got.err == nil || got.err.Error() != ref.err.Error() {
				t.Errorf("err = %v, want %v", got.err, ref.err)
			}
			if got.res != ref.res {
				t.Errorf("partial Result = %+v, want %+v", got.res, ref.res)
			}
			if len(got.stats) != len(ref.stats) {
				t.Fatalf("got %d rounds of stats, want %d", len(got.stats), len(ref.stats))
			}
			for i := range ref.stats {
				if got.stats[i] != ref.stats[i] {
					t.Errorf("round %d stats = %+v, want %+v", i+1, got.stats[i], ref.stats[i])
				}
			}
		})
	}
}

// TestShardedNodeDown checks NodeDown compatibility: the hook runs on
// the coordinator before routing, so sharded and sequential runs under
// the same fault schedule stay byte-identical.
func TestShardedNodeDown(t *testing.T) {
	const rounds = 8
	g := graph.Ring(64)
	down := func(round, v int) NodeStatus {
		switch {
		case round == 3 && v%7 == 0:
			return NodeDowned
		case round == 5 && v == 11:
			return NodeCrashed
		}
		return NodeUp
	}
	refNodes, refDigests := newDigestNodes(64, rounds)
	refRes, refErr := Run(NewNetwork(g), refNodes, Config{Driver: Workers, NodeDown: down})
	shNodes, shDigests := newDigestNodes(64, rounds)
	shRes, shErr := Run(NewNetwork(g), shNodes, Config{Driver: Workers, NodeDown: down, Shards: 5})
	if (refErr == nil) != (shErr == nil) || refRes != shRes {
		t.Fatalf("sharded (%v, %+v) != sequential (%v, %+v)", shErr, shRes, refErr, refRes)
	}
	for v := range refDigests {
		if refDigests[v] != shDigests[v] {
			t.Errorf("node %d digest %#x, want %#x", v, shDigests[v], refDigests[v])
		}
	}
}

// TestRoutingShardsContract pins the effective-shard-count rules:
// delivery hooks force the sequential path (their documented
// single-goroutine call-order contract), and Shards ≤ 1 is sequential.
func TestRoutingShardsContract(t *testing.T) {
	if got := (Config{Shards: 8}).routingShards(); got != 8 {
		t.Errorf("plain Shards=8: routingShards = %d, want 8", got)
	}
	for _, s := range []int{0, 1} {
		if got := (Config{Shards: s}).routingShards(); got != 1 {
			t.Errorf("Shards=%d: routingShards = %d, want 1", s, got)
		}
	}
	drop := Config{Shards: 8, DropMessage: func(round, from, to int) bool { return false }}
	if got := drop.routingShards(); got != 1 {
		t.Errorf("DropMessage set: routingShards = %d, want 1", got)
	}
	corrupt := Config{Shards: 8, CorruptMessage: func(round, from, to int, p Payload) (Payload, bool) { return p, false }}
	if got := corrupt.routingShards(); got != 1 {
		t.Errorf("CorruptMessage set: routingShards = %d, want 1", got)
	}
	if err := (Config{Shards: -1}).Validate(); !errors.Is(err, ErrConfig) {
		t.Errorf("Shards=-1: Validate = %v, want ErrConfig", err)
	}
}

// TestShardBounds checks the receiver-partition boundaries: they must
// cover [0, n] with nondecreasing cut points, clamp shard counts above
// n, and put every vertex in exactly one range.
func TestShardBounds(t *testing.T) {
	g := graph.GNP(50, 0.2, rand.New(rand.NewSource(9)))
	for _, s := range []int{1, 2, 3, 7, 50, 200} {
		rt := newRouter(NewNetwork(g), Config{})
		b := rt.bounds(s)
		if b[0] != 0 || b[len(b)-1] != g.N() {
			t.Fatalf("s=%d: bounds %v do not cover [0,%d]", s, b, g.N())
		}
		if len(b)-1 > s {
			t.Fatalf("s=%d: %d ranges", s, len(b)-1)
		}
		for i := 1; i < len(b); i++ {
			if b[i] < b[i-1] {
				t.Fatalf("s=%d: bounds %v decrease", s, b)
			}
		}
	}
}
