package sim

import (
	"errors"
	"math/rand"
	"runtime"
	"testing"

	"listcolor/internal/graph"
)

// digestChatter is the shard-conformance protocol: it folds every
// received message into an order-sensitive 64-bit digest (so any
// deviation in per-inbox delivery order, content, or sender
// attribution changes the final state) and alternates broadcast rounds
// with unicast rounds targeting a digest-dependent subset of
// neighbors — the traffic mix the sharded router must reproduce
// bit-for-bit, including receivers that straddle shard boundaries.
type digestChatter struct {
	rounds int
	h      uint64
	out    *uint64
}

const digestDomain = 1 << 20

func (d *digestChatter) mix(x int) {
	d.h ^= uint64(x) & (1<<20 - 1)
	d.h *= 1099511628211
}

func (d *digestChatter) sends(ctx *Context, round int) []Outgoing {
	val := IntPayload{Value: int(d.h % digestDomain), Domain: digestDomain}
	if round%2 == 0 {
		return []Outgoing{{To: Broadcast, Payload: val}}
	}
	var outs []Outgoing
	for i, w := range ctx.Neighbors {
		if (d.h>>(uint(i)%8))&1 == 1 {
			outs = append(outs, Outgoing{To: w, Payload: val})
		}
	}
	return outs
}

func (d *digestChatter) Init(ctx *Context) []Outgoing {
	d.h = 14695981039346656037
	d.mix(ctx.ID)
	return d.sends(ctx, 0)
}

func (d *digestChatter) Round(ctx *Context, round int, inbox []Message) ([]Outgoing, bool) {
	for _, m := range inbox {
		d.mix(m.From)
		if p, ok := m.Payload.(IntPayload); ok {
			d.mix(p.Value)
		}
	}
	d.mix(round)
	if round >= d.rounds {
		*d.out = d.h
		return nil, true
	}
	return d.sends(ctx, round), false
}

func newDigestNodes(n, rounds int) ([]Node, []uint64) {
	digests := make([]uint64, n)
	nodes := make([]Node, n)
	for v := 0; v < n; v++ {
		nodes[v] = &digestChatter{rounds: rounds, out: &digests[v]}
	}
	return nodes, digests
}

// shardSweepGraphs are the topologies the sweep runs on: a ring (every
// shard boundary cuts through uniform degree-2 rows), a G(n,p) with
// irregular degrees, and a star whose hub's broadcast spans every
// shard at once.
func shardSweepGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	gnp := graph.GNP(96, 0.08, rand.New(rand.NewSource(5)))
	star := graph.New(33)
	for v := 1; v < 33; v++ {
		star.MustAddEdge(0, v)
	}
	return map[string]*graph.Graph{
		"ring257": graph.Ring(257),
		"gnp96":   gnp,
		"star33":  star,
	}
}

// TestShardSweepFingerprints sweeps shard counts — including 1 (the
// sequential baseline), the degenerate n and beyond-n cases, and
// GOMAXPROCS — and demands byte-identical Results and node digests
// against the Lockstep reference for every count. Run under -race in
// CI with -count 2 (satellite: shard-boundary race tests).
func TestShardSweepFingerprints(t *testing.T) {
	const rounds = 9
	for name, g := range shardSweepGraphs(t) {
		t.Run(name, func(t *testing.T) {
			n := g.N()
			refNodes, refDigests := newDigestNodes(n, rounds)
			refRes, err := Run(NewNetwork(g), refNodes, Config{Driver: Lockstep})
			if err != nil {
				t.Fatalf("lockstep: %v", err)
			}
			shardCounts := []int{0, 1, 2, 3, 7, runtime.GOMAXPROCS(0), n, 3 * n}
			for _, s := range shardCounts {
				nodes, digests := newDigestNodes(n, rounds)
				res, err := Run(NewNetwork(g), nodes, Config{Driver: Workers, Shards: s})
				if err != nil {
					t.Fatalf("shards=%d: %v", s, err)
				}
				if res != refRes {
					t.Errorf("shards=%d: Result = %+v, want %+v", s, res, refRes)
				}
				for v := range digests {
					if digests[v] != refDigests[v] {
						t.Fatalf("shards=%d: node %d digest %#x, want %#x", s, v, digests[v], refDigests[v])
					}
				}
			}
		})
	}
}

// TestShardedErrorFallback checks that a round containing a protocol
// violation or node error takes the sequential fallback and reproduces
// the exact error and partial Result of an unsharded run.
func TestShardedErrorFallback(t *testing.T) {
	t.Run("non-neighbor", func(t *testing.T) {
		mk := func() []Node {
			return []Node{straySender{target: 3}, straySender{target: 0}, straySender{target: 1}, straySender{target: 2}}
		}
		g := graph.Path(4)
		seqRes, seqErr := Run(NewNetwork(g), mk(), Config{Driver: Workers})
		shRes, shErr := Run(NewNetwork(g), mk(), Config{Driver: Workers, Shards: 4})
		if !errors.Is(shErr, ErrNotNeighbor) {
			t.Fatalf("err = %v, want ErrNotNeighbor", shErr)
		}
		if seqErr == nil || shErr.Error() != seqErr.Error() || shRes != seqRes {
			t.Errorf("sharded (%v, %+v) != sequential (%v, %+v)", shErr, shRes, seqErr, seqRes)
		}
	})
	t.Run("bandwidth", func(t *testing.T) {
		mk := func() []Node { return []Node{bigSender{}, bigSender{}, bigSender{}, bigSender{}} }
		g := graph.Ring(4)
		cfg := Config{Driver: Workers, BandwidthBits: 64}
		seqRes, seqErr := Run(NewNetwork(g), mk(), cfg)
		cfg.Shards = 3
		shRes, shErr := Run(NewNetwork(g), mk(), cfg)
		if !errors.Is(shErr, ErrBandwidth) {
			t.Fatalf("err = %v, want ErrBandwidth", shErr)
		}
		if seqErr == nil || shErr.Error() != seqErr.Error() || shRes != seqRes {
			t.Errorf("sharded (%v, %+v) != sequential (%v, %+v)", shErr, shRes, seqErr, seqRes)
		}
	})
}

// TestShardedNodeDown checks NodeDown compatibility: the hook runs on
// the coordinator before routing, so sharded and sequential runs under
// the same fault schedule stay byte-identical.
func TestShardedNodeDown(t *testing.T) {
	const rounds = 8
	g := graph.Ring(64)
	down := func(round, v int) NodeStatus {
		switch {
		case round == 3 && v%7 == 0:
			return NodeDowned
		case round == 5 && v == 11:
			return NodeCrashed
		}
		return NodeUp
	}
	refNodes, refDigests := newDigestNodes(64, rounds)
	refRes, refErr := Run(NewNetwork(g), refNodes, Config{Driver: Workers, NodeDown: down})
	shNodes, shDigests := newDigestNodes(64, rounds)
	shRes, shErr := Run(NewNetwork(g), shNodes, Config{Driver: Workers, NodeDown: down, Shards: 5})
	if (refErr == nil) != (shErr == nil) || refRes != shRes {
		t.Fatalf("sharded (%v, %+v) != sequential (%v, %+v)", shErr, shRes, refErr, refRes)
	}
	for v := range refDigests {
		if refDigests[v] != shDigests[v] {
			t.Errorf("node %d digest %#x, want %#x", v, shDigests[v], refDigests[v])
		}
	}
}

// TestRoutingShardsContract pins the effective-shard-count rules:
// delivery hooks force the sequential path (their documented
// single-goroutine call-order contract), and Shards ≤ 1 is sequential.
func TestRoutingShardsContract(t *testing.T) {
	if got := (Config{Shards: 8}).routingShards(); got != 8 {
		t.Errorf("plain Shards=8: routingShards = %d, want 8", got)
	}
	for _, s := range []int{0, 1} {
		if got := (Config{Shards: s}).routingShards(); got != 1 {
			t.Errorf("Shards=%d: routingShards = %d, want 1", s, got)
		}
	}
	drop := Config{Shards: 8, DropMessage: func(round, from, to int) bool { return false }}
	if got := drop.routingShards(); got != 1 {
		t.Errorf("DropMessage set: routingShards = %d, want 1", got)
	}
	corrupt := Config{Shards: 8, CorruptMessage: func(round, from, to int, p Payload) (Payload, bool) { return p, false }}
	if got := corrupt.routingShards(); got != 1 {
		t.Errorf("CorruptMessage set: routingShards = %d, want 1", got)
	}
	if err := (Config{Shards: -1}).Validate(); !errors.Is(err, ErrConfig) {
		t.Errorf("Shards=-1: Validate = %v, want ErrConfig", err)
	}
}

// TestShardBounds checks the receiver-partition boundaries: they must
// cover [0, n] with nondecreasing cut points, clamp shard counts above
// n, and put every vertex in exactly one range.
func TestShardBounds(t *testing.T) {
	g := graph.GNP(50, 0.2, rand.New(rand.NewSource(9)))
	for _, s := range []int{1, 2, 3, 7, 50, 200} {
		rt := newRouter(NewNetwork(g), Config{})
		b := rt.bounds(s)
		if b[0] != 0 || b[len(b)-1] != g.N() {
			t.Fatalf("s=%d: bounds %v do not cover [0,%d]", s, b, g.N())
		}
		if len(b)-1 > s {
			t.Fatalf("s=%d: %d ranges", s, len(b)-1)
		}
		for i := 1; i < len(b); i++ {
			if b[i] < b[i-1] {
				t.Fatalf("s=%d: bounds %v decrease", s, b)
			}
		}
	}
}
