// Package sim implements the synchronous message-passing substrate the
// coloring algorithms run on: the LOCAL and CONGEST models of
// distributed computing [Pel00].
//
// A network is an n-node graph; computation proceeds in synchronous
// rounds. In each round every node may send a (possibly different)
// message to each neighbor, receives the messages its neighbors sent,
// and performs arbitrary local computation. The LOCAL model places no
// bound on message size; CONGEST caps every message at O(log n) bits.
// The engine counts rounds, messages and exact payload bits, and can
// enforce a per-message bandwidth cap so that tests can prove an
// algorithm is CONGEST-compliant rather than assert it.
//
// Protocols are per-node state machines (the Node interface). Three
// drivers execute them: a deterministic sequential lockstep driver, a
// goroutine driver that runs every node as its own goroutine
// synchronized by round barriers, and a worker-pool driver. All must
// produce identical results; the test suite checks this property on
// random protocols.
package sim

import (
	"errors"
	"fmt"
	"sync"

	"listcolor/internal/graph"
)

// Broadcast, used as Outgoing.To, sends the payload to every neighbor.
const Broadcast = -1

// Payload is the content of a message. Implementations report their
// exact encoded size in bits so the engine can do CONGEST accounting.
type Payload interface {
	SizeBits() int
}

// Message is a delivered message: who sent it and what it carries.
type Message struct {
	From    int
	Payload Payload
}

// Outgoing is a message a node wants delivered next round. To must be
// a neighbor of the sender, or Broadcast.
type Outgoing struct {
	To      int
	Payload Payload
}

// Node is a per-node protocol state machine.
//
// Init is called once before the first round and returns the messages
// to deliver in round 1. Round is called once per round r = 1, 2, ...
// with the messages delivered that round; it returns messages for
// round r+1 and whether the node has terminated (output fixed, no
// further sends). Messages returned together with done=true are still
// delivered.
//
// The inbox slice is owned by the engine's reusable delivery arena and
// is valid only for the duration of the Round call: a node that needs
// a Message (or its From field) later must copy it. Payload values
// themselves are sender-created and never recycled by the engine, so
// retaining a received Payload is safe.
type Node interface {
	Init(ctx *Context) []Outgoing
	Round(ctx *Context, round int, inbox []Message) (outbox []Outgoing, done bool)
}

// Context gives a node its local view of the topology. Slices are
// owned by the engine and must not be modified.
type Context struct {
	ID        int
	Neighbors []int
	Out       []int // out-neighbors under the input orientation; nil if unoriented
	In        []int // in-neighbors under the input orientation; nil if unoriented
}

// Driver selects the execution strategy.
type Driver int

const (
	// Lockstep runs nodes sequentially in id order each round. It is
	// the deterministic reference driver.
	Lockstep Driver = iota + 1
	// Goroutines runs every node as its own goroutine with a barrier
	// per round. Results are identical to Lockstep.
	Goroutines
	// Workers runs each round's node computations on a fixed pool of
	// worker goroutines (GOMAXPROCS-sized), then routes sequentially in
	// id order. Results are identical to Lockstep; this driver is the
	// fastest for large networks with cheap per-node work.
	Workers
)

// NodeStatus is the verdict of the NodeDown fault hook for one node in
// one round.
type NodeStatus int

const (
	// NodeUp is the zero value: the node executes the round normally.
	NodeUp NodeStatus = iota
	// NodeDowned skips the node's Round call for this round only. Its
	// state is preserved and the node stays in the run (crash-recover
	// semantics), but the messages delivered to it this round are lost
	// — inboxes live for exactly one round — and it sends nothing.
	NodeDowned
	// NodeCrashed terminates the node permanently (crash-stop): it is
	// marked done without a final Round call, never consulted again,
	// and sends nothing from this round on. Messages it routed in the
	// previous round are still delivered — the crash takes effect at
	// the start of its round. Neighbors waiting on a crashed node's
	// messages stall until MaxRounds, which surfaces as a
	// deterministic ErrRoundLimit under every driver.
	NodeCrashed
)

// Config controls an engine run. The zero value means: Lockstep
// driver, unlimited bandwidth (LOCAL model), and a default round limit.
type Config struct {
	Driver Driver
	// BandwidthBits, when positive, is the maximum size of a single
	// message; exceeding it fails the run (CONGEST enforcement).
	BandwidthBits int
	// MaxRounds bounds the run as a safety net against non-terminating
	// protocols. 0 means DefaultMaxRounds.
	MaxRounds int
	// Shards, when above 1, makes the Workers driver deliver each
	// round's messages in that many contiguous receiver ranges
	// concurrently, each range a disjoint slice of the shared inbox
	// arena (shard.go). Results are bit-identical for every value —
	// inbox contents, statistics, and errors all match the sequential
	// route — because each receiver's inbox is filled by exactly one
	// shard in the same ascending-sender order. 0 and 1 route
	// sequentially; drivers other than Workers ignore the field.
	// Rounds with a DropMessage or CorruptMessage hook installed also
	// route sequentially, preserving the hooks' single-goroutine
	// call-order contract.
	Shards int
	// OnRound, if non-nil, is invoked after every round with that
	// round's statistics (lockstep and goroutine drivers both call it
	// from the coordinating goroutine).
	OnRound func(RoundStats)
	// DropMessage, if non-nil, is a fault-injection hook: a message
	// sent by from to to in the given round is silently discarded when
	// it returns true. The paper's model assumes reliable links, so
	// algorithms are NOT expected to survive drops — this exists so
	// tests and the adversary layer can prove the validators and the
	// repair layer catch the resulting damage.
	//
	// Call-count contract (all hooks): invoked exactly once per edge
	// delivery of a sent message — a broadcast consults it once per
	// receiving neighbor — in ascending sender id, send order within a
	// sender, always from the routing goroutine. The schedule is
	// identical under every driver, so a deterministic predicate sees
	// the identical call sequence regardless of driver; predicates
	// should still be pure functions of (round, from, to) so that
	// reruns (driver-equivalence checks) see the same faults.
	DropMessage func(round, from, to int) bool
	// CorruptMessage, if non-nil, may replace the payload of a
	// delivery: returning (p2, true) delivers p2 instead of p.
	// It is consulted exactly once per NON-dropped edge delivery
	// (after DropMessage, same ordering contract), from the routing
	// goroutine. Accounting is untouched by corruption: the bits
	// billed and the bandwidth cap are properties of the sent payload,
	// so a corrupted message still bills its full original size.
	// The adversary package uses this with the Corrupted payload type
	// to model in-flight bit-flips.
	CorruptMessage func(round, from, to int, p Payload) (Payload, bool)
	// NodeDown, if non-nil, decides per (round, node) whether the node
	// executes. It is consulted exactly once per round for every node
	// that has not yet terminated (done or crashed), in ascending node
	// id, from the coordinating goroutine, for rounds ≥ 1 (Init always
	// executes; fault plans start at round 1). Down and crashed nodes
	// are excluded from that round's ActiveNodes and bill nothing,
	// but deliveries addressed to them are still billed — a sender
	// cannot observe the receiver's failure.
	NodeDown func(round, v int) NodeStatus
	// Span, if non-nil, collects the composition structure of composed
	// algorithms: orchestrators attach a child span per sub-step. The
	// engine itself ignores it.
	Span *Span
}

// ErrConfig is returned (wrapped) by Config.Validate and Run for
// nonsensical configurations.
var ErrConfig = errors.New("sim: invalid config")

// Validate rejects nonsensical configurations before a run starts:
// negative bandwidth or round limits and unknown drivers error here,
// at Run entry, instead of silently misbehaving mid-run.
func (c Config) Validate() error {
	if c.BandwidthBits < 0 {
		return fmt.Errorf("%w: negative BandwidthBits %d", ErrConfig, c.BandwidthBits)
	}
	if c.MaxRounds < 0 {
		return fmt.Errorf("%w: negative MaxRounds %d", ErrConfig, c.MaxRounds)
	}
	if c.Shards < 0 {
		return fmt.Errorf("%w: negative Shards %d", ErrConfig, c.Shards)
	}
	switch c.Driver {
	case 0, Lockstep, Goroutines, Workers:
	default:
		return fmt.Errorf("%w: unknown driver %d", ErrConfig, c.Driver)
	}
	return nil
}

// DefaultMaxRounds is the round limit used when Config.MaxRounds is 0.
const DefaultMaxRounds = 1 << 22

// RoundStats describes one completed round. Messages, Bits and MaxBits
// cover the sends routed during that round (delivered in the next
// round); dropped deliveries are excluded from Messages and Bits but a
// dropped message still counts toward MaxBits, mirroring Result's
// accounting.
type RoundStats struct {
	Round       int
	ActiveNodes int
	Messages    int
	Bits        int
	// MaxBits is the largest single message sent this round.
	MaxBits int
}

// Result aggregates a completed run.
type Result struct {
	Rounds         int // number of rounds until every node terminated
	Messages       int // total messages delivered
	TotalBits      int // total payload bits delivered
	MaxMessageBits int // largest single message
}

// merge combines two Results: messages and bits always add, the max
// message size is always the larger of the two, and the round counts
// combine by the given rule. Seq and Par are the only two sound rules
// — both flow through this one helper so the shared fields cannot
// drift apart.
func merge(a, b Result, rounds int) Result {
	return Result{
		Rounds:         rounds,
		Messages:       a.Messages + b.Messages,
		TotalBits:      a.TotalBits + b.TotalBits,
		MaxMessageBits: maxInt(a.MaxMessageBits, b.MaxMessageBits),
	}
}

func maxInt(a, b int) int {
	if b > a {
		return b
	}
	return a
}

// Seq returns the statistics of running a and then b sequentially:
// rounds, messages and bits add; the max message size is the larger of
// the two. The recursive algorithms use it to charge sub-protocol
// costs exactly as the paper's reductions do.
func Seq(a, b Result) Result {
	return merge(a, b, a.Rounds+b.Rounds)
}

// Par returns the statistics of running a and b in parallel on
// vertex-disjoint parts of the network: rounds take the max, messages
// and bits add.
func Par(a, b Result) Result {
	return merge(a, b, maxInt(a.Rounds, b.Rounds))
}

// ErrBandwidth is returned (wrapped) when a message exceeds the
// configured CONGEST cap.
var ErrBandwidth = errors.New("sim: message exceeds bandwidth cap")

// ErrNotNeighbor is returned (wrapped) when a node addresses a
// non-neighbor.
var ErrNotNeighbor = errors.New("sim: message to non-neighbor")

// ErrRoundLimit is returned (wrapped) when the protocol fails to
// terminate within MaxRounds.
var ErrRoundLimit = errors.New("sim: round limit exceeded")

// ErrNodePanic is returned (wrapped) when a node's Init or Round
// panics. Protocols are allowed to panic on violated invariants (e.g.
// a message lost to fault injection); the engine converts that into a
// deterministic run error — attributed to the smallest panicking node
// id of the earliest failing round, under every driver — instead of
// crashing the process.
var ErrNodePanic = errors.New("sim: node panicked")

// safeInit calls nd.Init, converting a panic into an error.
func safeInit(nd Node, ctx *Context) (outs []Outgoing, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: node %d in init: %v", ErrNodePanic, ctx.ID, r)
		}
	}()
	return nd.Init(ctx), nil
}

// safeRound calls nd.Round, converting a panic into an error.
func safeRound(nd Node, ctx *Context, round int, inbox []Message) (outs []Outgoing, done bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: node %d in round %d: %v", ErrNodePanic, ctx.ID, round, r)
		}
	}()
	outs, done = nd.Round(ctx, round, inbox)
	return outs, done, nil
}

// Network is the communication topology: a CSR-form undirected graph
// plus an optional edge orientation exposed to the nodes
// (communication is always bidirectional, as in the paper's model).
//
// CSR is the native representation end-to-end: the router, the inbox
// arena, and the node contexts all index the shared rowPtr/col arrays,
// and neighbor slices handed to nodes are zero-copy views into them.
// Networks built from an adjacency-list Graph convert once at
// construction; scale paths construct directly from a streamed CSR
// (NewCSRNetwork) and never materialize per-node adjacency slices.
type Network struct {
	topo *graph.CSR
	// g is the adjacency-list view: the construction-time original for
	// Graph-built networks, or a lazily materialized copy for
	// CSR-built ones (validation/diagnostics paths only — it allocates
	// per-node slices, so scale paths must not call Graph()).
	g  *graph.Graph
	di *graph.Digraph
}

// NewNetwork returns a network over an undirected graph.
func NewNetwork(g *graph.Graph) *Network {
	return &Network{topo: graph.CSRFromGraph(g), g: g}
}

// NewCSRNetwork returns a network directly over a CSR topology —
// the streamed-generator path, which never builds adjacency lists.
func NewCSRNetwork(c *graph.CSR) *Network {
	return &Network{topo: c}
}

// NewOrientedNetwork returns a network over an oriented graph: nodes
// see Out/In neighbor sets, but messages travel both ways.
func NewOrientedNetwork(d *graph.Digraph) *Network {
	g := d.Underlying()
	return &Network{topo: graph.CSRFromGraph(g), g: g, di: d}
}

// N returns the number of nodes.
func (nw *Network) N() int { return nw.topo.N() }

// CSR returns the native topology.
func (nw *Network) CSR() *graph.CSR { return nw.topo }

// Graph returns the underlying undirected graph, materializing (and
// caching) an adjacency-list copy for CSR-built networks. Validation
// and diagnostics only: the copy allocates per-node slices, which the
// CSR-native scale path exists to avoid.
func (nw *Network) Graph() *graph.Graph {
	if nw.g == nil {
		nw.g = nw.topo.Graph()
	}
	return nw.g
}

// Digraph returns the orientation, or nil for an unoriented network.
func (nw *Network) Digraph() *graph.Digraph { return nw.di }

func (nw *Network) context(v int) *Context {
	ctx := &Context{ID: v, Neighbors: nw.topo.Row(v)}
	if nw.di != nil {
		ctx.Out = nw.di.Out(v)
		ctx.In = nw.di.In(v)
	}
	return ctx
}

// contexts builds the per-node contexts as one flat array — a single
// allocation instead of n, with every Neighbors slice a zero-copy view
// into the CSR column array. The lockstep and workers drivers index
// it; the goroutines driver builds contexts per node goroutine.
func (nw *Network) contexts() []Context {
	ctxs := make([]Context, nw.N())
	for v := range ctxs {
		ctxs[v].ID = v
		ctxs[v].Neighbors = nw.topo.Row(v)
		if nw.di != nil {
			ctxs[v].Out = nw.di.Out(v)
			ctxs[v].In = nw.di.In(v)
		}
	}
	return ctxs
}

// Run executes the protocol given by nodes (one per vertex) on the
// network and returns the aggregated result. len(nodes) must equal the
// number of vertices.
func Run(nw *Network, nodes []Node, cfg Config) (Result, error) {
	if len(nodes) != nw.N() {
		return Result{}, fmt.Errorf("sim: %d nodes for %d vertices", len(nodes), nw.N())
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Driver == 0 {
		cfg.Driver = Lockstep
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	switch cfg.Driver {
	case Lockstep:
		return runLockstep(nw, nodes, cfg)
	case Goroutines:
		return runGoroutines(nw, nodes, cfg)
	case Workers:
		return runWorkers(nw, nodes, cfg)
	default:
		return Result{}, fmt.Errorf("sim: unknown driver %d", cfg.Driver)
	}
}

// router collects each round's outgoing messages into a double-buffered
// inbox arena and produces the next round's inboxes, accounting bits
// and enforcing caps. Steady-state routing performs no allocation: each
// node's inbox is a fixed-capacity slot carved out of one flat
// []Message sized by the graph's degree sequence (CSR layout), and the
// two arenas are swapped each round instead of reallocated. A protocol
// that sends more than one message per edge per round overflows its
// receiver's slot; the full slice expressions below make that append
// promote the single inbox to its own heap slice (kept, and reused at
// its grown capacity) rather than clobber the next node's slots.
//
// Delivery order guarantee: inboxes are filled in ascending sender id
// because every driver routes outboxes in id order, and a sender's own
// messages stay in send order. That is exactly the ordering the old
// per-inbox stable sort produced, so no sorting happens anywhere.
type router struct {
	topo *graph.CSR
	cfg  Config
	res  Result
	// cur holds the inboxes the drivers are consuming this round; next
	// is the arena route fills for the following round. flush swaps
	// them, so an inbox handed to a node is valid for exactly one
	// Round call.
	cur, next [][]Message
	round     int // the round currently being routed (0 = init sends)
	roundMax  int // largest message sent while routing this round

	// Sharded-routing state (shard.go). shardBounds partitions the
	// receivers into Config.Shards contiguous ranges balanced by arena
	// slots; the prep slices are the validation pass's reusable
	// scratch, grown once and then allocation-free.
	shardBounds []int
	prepSenders []int
	prepOff     []int
	prepBits    []int
	prepMax     int
	shardMsgs   []int
	shardBits   []int
}

func newRouter(nw *Network, cfg Config) *router {
	return &router{topo: nw.topo, cfg: cfg, cur: newInboxArena(nw.topo), next: newInboxArena(nw.topo)}
}

// newInboxArena carves one flat message buffer into per-node inboxes of
// capacity deg(v) — the exact per-round inbound slot count of the
// paper's one-message-per-edge regime. Slot offsets come straight from
// the CSR row offsets: the arena is the topology's mirror image.
func newInboxArena(c *graph.CSR) [][]Message {
	n := c.N()
	flat := make([]Message, c.Arcs())
	boxes := make([][]Message, n)
	for v := 0; v < n; v++ {
		off := int(c.RowStart(v))
		boxes[v] = flat[off : off : off+c.Degree(v)]
	}
	return boxes
}

// route ingests the outbox of node v. It returns an error on protocol
// violations (non-neighbor target, bandwidth overflow).
//
// CONGEST accounting semantics: the bandwidth cap and the
// MaxMessageBits statistic are properties of the *sent* message — a
// broadcast is one sent message, and fault injection cannot hide an
// oversized send (dropped messages consume the send). Messages and
// TotalBits are properties of *edge deliveries* — a broadcast is
// billed once per receiving neighbor, and a dropped delivery is not
// billed.
func (r *router) route(v int, outs []Outgoing) error {
	for i := range outs {
		o := &outs[i]
		bits := 0
		if o.Payload != nil {
			bits = o.Payload.SizeBits()
		}
		if r.cfg.BandwidthBits > 0 && bits > r.cfg.BandwidthBits {
			return fmt.Errorf("%w: node %d sent %d bits (cap %d)", ErrBandwidth, v, bits, r.cfg.BandwidthBits)
		}
		if o.To == Broadcast {
			for _, t := range r.topo.Row(v) {
				r.deliver(v, t, bits, o.Payload)
			}
		} else {
			if !r.topo.HasEdge(v, o.To) {
				return fmt.Errorf("%w: node %d -> %d", ErrNotNeighbor, v, o.To)
			}
			r.deliver(v, o.To, bits, o.Payload)
		}
		if bits > r.res.MaxMessageBits {
			r.res.MaxMessageBits = bits
		}
		if bits > r.roundMax {
			r.roundMax = bits
		}
	}
	return nil
}

// deliver appends one edge-delivery to the receiving inbox being filled
// for the next round, unless fault injection drops it. A corrupted
// delivery replaces the payload but bills the original's bits: the
// wire carried the full message, damaged or not.
func (r *router) deliver(from, to, bits int, p Payload) {
	if r.cfg.DropMessage != nil && r.cfg.DropMessage(r.round, from, to) {
		return
	}
	if r.cfg.CorruptMessage != nil {
		if cp, ok := r.cfg.CorruptMessage(r.round, from, to, p); ok {
			p = cp
		}
	}
	r.next[to] = append(r.next[to], Message{From: from, Payload: p})
	r.res.Messages++
	r.res.TotalBits += bits
}

// flush makes the messages routed so far the current round's inboxes
// and recycles the previously consumed arena as the new fill target.
// The returned slices are valid only until the next flush call — i.e.
// for the one round the drivers execute with them.
func (r *router) flush() [][]Message {
	r.cur, r.next = r.next, r.cur
	for v := range r.next {
		r.next[v] = r.next[v][:0]
	}
	r.roundMax = 0
	return r.cur
}

func runLockstep(nw *Network, nodes []Node, cfg Config) (Result, error) {
	n := nw.N()
	ctxs := nw.contexts()
	rt := newRouter(nw, cfg)
	for v := 0; v < n; v++ {
		outs, err := safeInit(nodes[v], &ctxs[v])
		if err != nil {
			return rt.res, err
		}
		if err := rt.route(v, outs); err != nil {
			return rt.res, fmt.Errorf("init of node %d: %w", v, err)
		}
	}
	done := make([]bool, n)
	remaining := n
	for round := 1; remaining > 0; round++ {
		if round > cfg.MaxRounds {
			return rt.res, fmt.Errorf("%w: %d", ErrRoundLimit, cfg.MaxRounds)
		}
		inboxes := rt.flush()
		rt.round = round
		prevMsgs, prevBits := rt.res.Messages, rt.res.TotalBits
		active := 0
		for v := 0; v < n; v++ {
			if done[v] {
				continue
			}
			if cfg.NodeDown != nil {
				switch cfg.NodeDown(round, v) {
				case NodeDowned:
					continue // state kept, round (and this round's inbox) lost
				case NodeCrashed:
					done[v] = true
					remaining--
					continue
				}
			}
			active++
			outs, fin, err := safeRound(nodes[v], &ctxs[v], round, inboxes[v])
			if err != nil {
				return rt.res, err
			}
			if err := rt.route(v, outs); err != nil {
				return rt.res, fmt.Errorf("round %d, node %d: %w", round, v, err)
			}
			if fin {
				done[v] = true
				remaining--
			}
		}
		rt.res.Rounds = round
		if cfg.OnRound != nil {
			cfg.OnRound(RoundStats{
				Round:       round,
				ActiveNodes: active,
				Messages:    rt.res.Messages - prevMsgs,
				Bits:        rt.res.TotalBits - prevBits,
				MaxBits:     rt.roundMax,
			})
		}
	}
	return rt.res, nil
}

// runGoroutines executes each node in its own goroutine, synchronized
// by per-round channels. The coordinator routes messages between
// rounds, so results are identical to the lockstep driver.
func runGoroutines(nw *Network, nodes []Node, cfg Config) (Result, error) {
	n := nw.N()
	type roundIn struct {
		round int
		inbox []Message
	}
	type roundOut struct {
		outs []Outgoing
		done bool
		err  error
	}
	ins := make([]chan roundIn, n)
	outs := make([]chan roundOut, n)
	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		ins[v] = make(chan roundIn)
		// Buffer of one: a node never has more than one un-collected
		// round output, so sends never block and an error return in the
		// coordinator cannot deadlock a mid-send node.
		outs[v] = make(chan roundOut, 1)
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			ctx := nw.context(v)
			init, err := safeInit(nodes[v], ctx)
			outs[v] <- roundOut{outs: init, err: err}
			if err != nil {
				return
			}
			for ri := range ins[v] {
				o, d, err := safeRound(nodes[v], ctx, ri.round, ri.inbox)
				outs[v] <- roundOut{outs: o, done: d, err: err}
				if d || err != nil {
					return
				}
			}
		}(v)
	}
	// Ensure the node goroutines are released even on an error return:
	// close every input channel still open.
	alive := make([]bool, n)
	for v := range alive {
		alive[v] = true
	}
	defer func() {
		for v, a := range alive {
			if a {
				close(ins[v])
			}
		}
		wg.Wait()
	}()

	rt := newRouter(nw, cfg)
	for v := 0; v < n; v++ {
		ro := <-outs[v]
		if ro.err != nil {
			alive[v] = false // its goroutine has already returned
			return rt.res, ro.err
		}
		if err := rt.route(v, ro.outs); err != nil {
			return rt.res, fmt.Errorf("init of node %d: %w", v, err)
		}
	}
	remaining := n
	// status records the NodeDown verdict of every alive node for the
	// round being coordinated, so the collect pass skips the nodes the
	// kick pass never started. All zeros (NodeUp) when the hook is nil.
	status := make([]NodeStatus, n)
	for round := 1; remaining > 0; round++ {
		if round > cfg.MaxRounds {
			return rt.res, fmt.Errorf("%w: %d", ErrRoundLimit, cfg.MaxRounds)
		}
		inboxes := rt.flush()
		rt.round = round
		prevMsgs, prevBits := rt.res.Messages, rt.res.TotalBits
		active := 0
		// Kick off all alive nodes for this round, then collect in id
		// order so routing is deterministic. The NodeDown hook runs
		// here, on the coordinator, in ascending id order — the same
		// schedule as the other drivers.
		for v := 0; v < n; v++ {
			if !alive[v] {
				continue
			}
			st := NodeUp
			if cfg.NodeDown != nil {
				st = cfg.NodeDown(round, v)
			}
			status[v] = st
			switch st {
			case NodeDowned:
				// Skipped this round; its goroutine idles at the
				// channel receive until a later round or shutdown.
			case NodeCrashed:
				close(ins[v])
				alive[v] = false
				remaining--
			default:
				active++
				ins[v] <- roundIn{round: round, inbox: inboxes[v]}
			}
		}
		for v := 0; v < n; v++ {
			if !alive[v] || status[v] != NodeUp {
				continue
			}
			ro := <-outs[v]
			if ro.err != nil {
				alive[v] = false // its goroutine has already returned
				return rt.res, ro.err
			}
			if err := rt.route(v, ro.outs); err != nil {
				return rt.res, fmt.Errorf("round %d, node %d: %w", round, v, err)
			}
			if ro.done {
				close(ins[v])
				alive[v] = false
				remaining--
			}
		}
		rt.res.Rounds = round
		if cfg.OnRound != nil {
			cfg.OnRound(RoundStats{
				Round:       round,
				ActiveNodes: active,
				Messages:    rt.res.Messages - prevMsgs,
				Bits:        rt.res.TotalBits - prevBits,
				MaxBits:     rt.roundMax,
			})
		}
	}
	return rt.res, nil
}
