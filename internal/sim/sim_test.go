package sim

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"listcolor/internal/graph"
)

// floodMax is a test protocol: every node learns the maximum id within
// `hops` hops by flooding, then terminates. It exercises broadcast,
// multi-round state, and termination.
type floodMax struct {
	hops int
	best int
	out  *int // where to record the result
}

func (f *floodMax) Init(ctx *Context) []Outgoing {
	f.best = ctx.ID
	return []Outgoing{{To: Broadcast, Payload: IntPayload{Value: f.best, Domain: 1 << 20}}}
}

func (f *floodMax) Round(ctx *Context, round int, inbox []Message) ([]Outgoing, bool) {
	for _, m := range inbox {
		// Two-value assertion: fault tests deliver Corrupted payloads,
		// which a well-formed protocol ignores.
		if p, ok := m.Payload.(IntPayload); ok && p.Value > f.best {
			f.best = p.Value
		}
	}
	if round >= f.hops {
		*f.out = f.best
		return nil, true
	}
	return []Outgoing{{To: Broadcast, Payload: IntPayload{Value: f.best, Domain: 1 << 20}}}, false
}

func newFloodMaxNodes(n, hops int) ([]Node, []int) {
	results := make([]int, n)
	nodes := make([]Node, n)
	for v := 0; v < n; v++ {
		v := v
		nodes[v] = &floodMax{hops: hops, out: &results[v]}
	}
	return nodes, results
}

func TestFloodMaxOnRing(t *testing.T) {
	n := 11
	g := graph.Ring(n)
	hops := n // enough to cover the ring
	nodes, results := newFloodMaxNodes(n, hops)
	res, err := Run(NewNetwork(g), nodes, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Rounds != hops {
		t.Errorf("Rounds = %d, want %d", res.Rounds, hops)
	}
	for v, r := range results {
		if r != n-1 {
			t.Errorf("node %d learned max %d, want %d", v, r, n-1)
		}
	}
}

func TestFloodMaxLimitedHops(t *testing.T) {
	// On a path, k hops reach exactly distance k.
	n := 10
	g := graph.Path(n)
	nodes, results := newFloodMaxNodes(n, 3)
	if _, err := Run(NewNetwork(g), nodes, Config{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for v := 0; v < n; v++ {
		want := v + 3
		if want > n-1 {
			want = n - 1
		}
		if results[v] != want {
			t.Errorf("node %d: max in 3 hops = %d, want %d", v, results[v], want)
		}
	}
}

func TestDriverEquivalence(t *testing.T) {
	f := func(seed int64, rawN uint8, rawHops uint8) bool {
		n := int(rawN%20) + 3
		hops := int(rawHops%5) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.3, rng)
		nodesA, resA := newFloodMaxNodes(n, hops)
		nodesB, resB := newFloodMaxNodes(n, hops)
		nodesC, resC := newFloodMaxNodes(n, hops)
		ra, errA := Run(NewNetwork(g), nodesA, Config{Driver: Lockstep})
		rb, errB := Run(NewNetwork(g), nodesB, Config{Driver: Goroutines})
		rc, errC := Run(NewNetwork(g), nodesC, Config{Driver: Workers})
		if errA != nil || errB != nil || errC != nil {
			return false
		}
		if ra != rb || ra != rc {
			return false
		}
		for v := range resA {
			if resA[v] != resB[v] || resA[v] != resC[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestWorkersDriverErrors(t *testing.T) {
	nodes := []Node{forever{}, forever{}, forever{}}
	if _, err := Run(NewNetwork(graph.Ring(3)), nodes, Config{MaxRounds: 10, Driver: Workers}); !errors.Is(err, ErrRoundLimit) {
		t.Errorf("err = %v, want ErrRoundLimit", err)
	}
	bad := []Node{straySender{target: 2}, straySender{target: 0}, straySender{target: 1}}
	// On a path 0-1-2, node 0 → 2 is not an edge.
	if _, err := Run(NewNetwork(graph.Path(3)), bad, Config{Driver: Workers}); !errors.Is(err, ErrNotNeighbor) {
		t.Errorf("err = %v, want ErrNotNeighbor", err)
	}
}

func TestMessageAccounting(t *testing.T) {
	// On a ring of n nodes for h rounds of broadcast: round 1 delivers
	// the Init broadcasts (2n messages), each subsequent non-final
	// round delivers 2n more. Nodes terminate after round h without
	// sending. Total = 2n·h messages... minus the final round's sends
	// (none). Init + rounds 1..h-1 send ⇒ h·2n delivered.
	n, h := 6, 4
	nodes, _ := newFloodMaxNodes(n, h)
	res, err := Run(NewNetwork(graph.Ring(n)), nodes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	wantMsgs := 2 * n * h
	if res.Messages != wantMsgs {
		t.Errorf("Messages = %d, want %d", res.Messages, wantMsgs)
	}
	if res.MaxMessageBits != 20 {
		t.Errorf("MaxMessageBits = %d, want 20", res.MaxMessageBits)
	}
	if res.TotalBits != wantMsgs*20 {
		t.Errorf("TotalBits = %d, want %d", res.TotalBits, wantMsgs*20)
	}
}

// bigSender sends one oversized message and stops.
type bigSender struct{}

func (bigSender) Init(ctx *Context) []Outgoing {
	return []Outgoing{{To: Broadcast, Payload: IntsPayload{Values: make([]int, 100), Domain: 1 << 16}}}
}

func (bigSender) Round(ctx *Context, round int, inbox []Message) ([]Outgoing, bool) {
	return nil, true
}

func TestBandwidthEnforcement(t *testing.T) {
	g := graph.Ring(4)
	nodes := make([]Node, 4)
	for v := range nodes {
		nodes[v] = bigSender{}
	}
	_, err := Run(NewNetwork(g), nodes, Config{BandwidthBits: 64})
	if !errors.Is(err, ErrBandwidth) {
		t.Errorf("err = %v, want ErrBandwidth", err)
	}
	// Without a cap the same protocol runs fine (LOCAL model).
	nodes2 := make([]Node, 4)
	for v := range nodes2 {
		nodes2[v] = bigSender{}
	}
	if _, err := Run(NewNetwork(g), nodes2, Config{}); err != nil {
		t.Errorf("uncapped run failed: %v", err)
	}
}

// straySender tries to message a non-neighbor.
type straySender struct{ target int }

func (s straySender) Init(ctx *Context) []Outgoing {
	return []Outgoing{{To: s.target, Payload: IntPayload{Value: 0, Domain: 2}}}
}

func (s straySender) Round(ctx *Context, round int, inbox []Message) ([]Outgoing, bool) {
	return nil, true
}

func TestNonNeighborRejected(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3; 0 and 3 are not adjacent
	nodes := []Node{straySender{target: 3}, straySender{target: 0}, straySender{target: 1}, straySender{target: 2}}
	_, err := Run(NewNetwork(g), nodes, Config{})
	if !errors.Is(err, ErrNotNeighbor) {
		t.Errorf("err = %v, want ErrNotNeighbor", err)
	}
}

// never terminates.
type forever struct{}

func (forever) Init(ctx *Context) []Outgoing { return nil }
func (forever) Round(ctx *Context, round int, inbox []Message) ([]Outgoing, bool) {
	return nil, false
}

func TestRoundLimit(t *testing.T) {
	nodes := []Node{forever{}, forever{}, forever{}}
	_, err := Run(NewNetwork(graph.Ring(3)), nodes, Config{MaxRounds: 10})
	if !errors.Is(err, ErrRoundLimit) {
		t.Errorf("err = %v, want ErrRoundLimit", err)
	}
}

func TestRoundLimitGoroutines(t *testing.T) {
	nodes := []Node{forever{}, forever{}, forever{}}
	_, err := Run(NewNetwork(graph.Ring(3)), nodes, Config{MaxRounds: 10, Driver: Goroutines})
	if !errors.Is(err, ErrRoundLimit) {
		t.Errorf("err = %v, want ErrRoundLimit", err)
	}
}

func TestOnRoundStats(t *testing.T) {
	n, h := 5, 3
	nodes, _ := newFloodMaxNodes(n, h)
	var rounds []RoundStats
	_, err := Run(NewNetwork(graph.Ring(n)), nodes, Config{
		OnRound: func(rs RoundStats) { rounds = append(rounds, rs) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != h {
		t.Fatalf("OnRound called %d times, want %d", len(rounds), h)
	}
	for i, rs := range rounds {
		if rs.Round != i+1 {
			t.Errorf("rounds[%d].Round = %d", i, rs.Round)
		}
		if rs.ActiveNodes != n {
			t.Errorf("rounds[%d].ActiveNodes = %d, want %d", i, rs.ActiveNodes, n)
		}
	}
	// Messages per round: each round delivers the previous round's 2n sends.
	if rounds[0].Messages != 2*n {
		t.Errorf("round 1 delivered %d messages, want %d", rounds[0].Messages, 2*n)
	}
}

func TestOrientedContext(t *testing.T) {
	g := graph.Path(3)
	d := graph.OrientByID(g)
	nw := NewOrientedNetwork(d)
	seenOut := make([][]int, 3)
	nodes := make([]Node, 3)
	for v := 0; v < 3; v++ {
		v := v
		nodes[v] = &ctxProbe{record: func(ctx *Context) {
			seenOut[v] = append([]int(nil), ctx.Out...)
		}}
	}
	if _, err := Run(nw, nodes, Config{}); err != nil {
		t.Fatal(err)
	}
	// Arcs toward smaller id: 1→0, 2→1.
	if len(seenOut[0]) != 0 || len(seenOut[1]) != 1 || seenOut[1][0] != 0 || len(seenOut[2]) != 1 || seenOut[2][0] != 1 {
		t.Errorf("oriented contexts wrong: %v", seenOut)
	}
}

type ctxProbe struct{ record func(*Context) }

func (p *ctxProbe) Init(ctx *Context) []Outgoing { p.record(ctx); return nil }
func (p *ctxProbe) Round(ctx *Context, round int, inbox []Message) ([]Outgoing, bool) {
	return nil, true
}

func TestInboxSortedBySender(t *testing.T) {
	// On K4, every node receives three messages, sorted by sender id.
	n := 4
	order := make([][]int, n)
	nodes := make([]Node, n)
	for v := 0; v < n; v++ {
		v := v
		nodes[v] = &inboxProbe{n: n, record: func(froms []int) { order[v] = froms }}
	}
	if _, err := Run(NewNetwork(graph.Complete(n)), nodes, Config{Driver: Goroutines}); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if len(order[v]) != n-1 {
			t.Fatalf("node %d received %d messages", v, len(order[v]))
		}
		for i := 1; i < len(order[v]); i++ {
			if order[v][i-1] >= order[v][i] {
				t.Errorf("node %d inbox not sorted: %v", v, order[v])
			}
		}
	}
}

type inboxProbe struct {
	n      int
	record func([]int)
}

func (p *inboxProbe) Init(ctx *Context) []Outgoing {
	return []Outgoing{{To: Broadcast, Payload: IntPayload{Value: ctx.ID, Domain: p.n}}}
}

func (p *inboxProbe) Round(ctx *Context, round int, inbox []Message) ([]Outgoing, bool) {
	froms := make([]int, len(inbox))
	for i, m := range inbox {
		froms[i] = m.From
	}
	p.record(froms)
	return nil, true
}

func TestNodeCountMismatch(t *testing.T) {
	if _, err := Run(NewNetwork(graph.Ring(3)), []Node{forever{}}, Config{}); err == nil {
		t.Error("accepted wrong node count")
	}
}

func TestPayloadSizes(t *testing.T) {
	if got := BitsFor(1); got != 1 {
		t.Errorf("BitsFor(1) = %d, want 1", got)
	}
	if got := BitsFor(2); got != 1 {
		t.Errorf("BitsFor(2) = %d, want 1", got)
	}
	if got := BitsFor(1024); got != 10 {
		t.Errorf("BitsFor(1024) = %d, want 10", got)
	}
	if got := (IntPayload{Value: 5, Domain: 100}).SizeBits(); got != 7 {
		t.Errorf("IntPayload size = %d, want 7", got)
	}
	p := IntsPayload{Values: []int{1, 2, 3}, Domain: 16, MaxLen: 7}
	if got := p.SizeBits(); got != 3+12 { // 3-bit header (domain 8) + 3×4 bits
		t.Errorf("IntsPayload size = %d, want 15", got)
	}
	pp := PairPayload{A: 1, B: 2, DomainA: 4, DomainB: 256}
	if got := pp.SizeBits(); got != 2+8 {
		t.Errorf("PairPayload size = %d, want 10", got)
	}
}
