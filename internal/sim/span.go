package sim

import (
	"fmt"
	"strings"
)

// Span records one step of a composed algorithm — a sub-protocol run,
// a recursion level, a class sweep — as a node in a tree. The
// orchestrators (Fast-Two-Sweep, the color space reduction, the
// slack reductions, the (deg+1) pipeline) attach child spans to
// Config.Span, so a run's composition structure can be rendered
// afterwards.
//
// All methods are nil-safe: with a nil receiver they do nothing and
// return nil, so the orchestration code records unconditionally and
// callers opt in by supplying a root span.
type Span struct {
	Label    string
	Stats    Result
	Children []*Span
}

// NewSpan returns a root span to pass as Config.Span.
func NewSpan(label string) *Span { return &Span{Label: label} }

// Child appends and returns a new child span. Returns nil when the
// receiver is nil.
func (s *Span) Child(label string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Label: label}
	s.Children = append(s.Children, c)
	return c
}

// Done records the step's aggregated statistics.
func (s *Span) Done(stats Result) {
	if s == nil {
		return
	}
	s.Stats = stats
}

// Count returns the total number of spans in the tree (including the
// receiver); 0 for nil.
func (s *Span) Count() int {
	if s == nil {
		return 0
	}
	n := 1
	for _, c := range s.Children {
		n += c.Count()
	}
	return n
}

// Render returns an indented tree, truncated at maxDepth levels
// (0 = just the root). Sibling runs beyond maxWide per level are
// summarized as a single "... (+k more)" line so deep recursions stay
// readable.
func (s *Span) Render(maxDepth, maxWide int) string {
	if s == nil {
		return "(no spans recorded)\n"
	}
	var b strings.Builder
	s.render(&b, 0, maxDepth, maxWide)
	return b.String()
}

func (s *Span) render(b *strings.Builder, depth, maxDepth, maxWide int) {
	fmt.Fprintf(b, "%s%s  [rounds=%d msgs=%d bits=%d]\n",
		strings.Repeat("  ", depth), s.Label, s.Stats.Rounds, s.Stats.Messages, s.Stats.TotalBits)
	if depth == maxDepth {
		if len(s.Children) > 0 {
			fmt.Fprintf(b, "%s… %d nested spans\n", strings.Repeat("  ", depth+1), s.Count()-1)
		}
		return
	}
	shown := len(s.Children)
	if maxWide > 0 && shown > maxWide {
		shown = maxWide
	}
	for _, c := range s.Children[:shown] {
		c.render(b, depth+1, maxDepth, maxWide)
	}
	if rest := len(s.Children) - shown; rest > 0 {
		fmt.Fprintf(b, "%s… (+%d more siblings)\n", strings.Repeat("  ", depth+1), rest)
	}
}
