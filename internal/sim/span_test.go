package sim

import (
	"listcolor/internal/graph"
	"strings"
	"testing"
)

func TestSpanTreeConstruction(t *testing.T) {
	root := NewSpan("root")
	a := root.Child("a")
	b := root.Child("b")
	a1 := a.Child("a1")
	a.Done(Result{Rounds: 5})
	b.Done(Result{Rounds: 2})
	a1.Done(Result{Rounds: 3, Messages: 7})
	root.Done(Result{Rounds: 7})

	if root.Count() != 4 {
		t.Errorf("Count = %d, want 4", root.Count())
	}
	if len(root.Children) != 2 || len(a.Children) != 1 {
		t.Error("tree shape wrong")
	}
	if a1.Stats.Messages != 7 {
		t.Error("Done did not record stats")
	}
}

func TestSpanNilSafety(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Error("nil span produced a child")
	}
	c.Done(Result{Rounds: 1}) // must not panic
	if s.Count() != 0 {
		t.Error("nil Count != 0")
	}
	if !strings.Contains(s.Render(3, 3), "no spans") {
		t.Error("nil Render message missing")
	}
}

func TestSpanRenderDepthAndWidth(t *testing.T) {
	root := NewSpan("root")
	for i := 0; i < 10; i++ {
		c := root.Child("child")
		c.Child("grandchild").Done(Result{})
		c.Done(Result{Rounds: i})
	}
	root.Done(Result{Rounds: 100})

	// Depth 0: only the root plus a summary line.
	shallow := root.Render(0, 5)
	if strings.Count(shallow, "\n") != 2 {
		t.Errorf("depth-0 render:\n%s", shallow)
	}
	if !strings.Contains(shallow, "20 nested spans") {
		t.Errorf("depth-0 summary missing:\n%s", shallow)
	}
	// Width 3 at depth 1: 3 children + "+7 more".
	narrow := root.Render(1, 3)
	if !strings.Contains(narrow, "+7 more siblings") {
		t.Errorf("width cap missing:\n%s", narrow)
	}
	if got := strings.Count(narrow, "child "); got != 3 {
		t.Errorf("showed %d children, want 3:\n%s", got, narrow)
	}
}

func TestSpanThroughConfig(t *testing.T) {
	// The engine ignores Config.Span; protocols/orchestrators own it.
	// This pins that passing one through a plain Run is harmless.
	root := NewSpan("run")
	nodes, _ := newFloodMaxNodes(4, 1)
	if _, err := Run(NewNetwork(graph.Ring(4)), nodes, Config{Span: root}); err != nil {
		t.Fatal(err)
	}
	if root.Count() != 1 {
		t.Errorf("engine should not add spans, Count = %d", root.Count())
	}
}
