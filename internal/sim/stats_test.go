package sim

import (
	"testing"
	"testing/quick"

	"listcolor/internal/graph"
)

func TestSeq(t *testing.T) {
	a := Result{Rounds: 3, Messages: 10, TotalBits: 100, MaxMessageBits: 12}
	b := Result{Rounds: 2, Messages: 5, TotalBits: 40, MaxMessageBits: 20}
	got := Seq(a, b)
	want := Result{Rounds: 5, Messages: 15, TotalBits: 140, MaxMessageBits: 20}
	if got != want {
		t.Errorf("Seq = %+v, want %+v", got, want)
	}
}

func TestPar(t *testing.T) {
	a := Result{Rounds: 3, Messages: 10, TotalBits: 100, MaxMessageBits: 12}
	b := Result{Rounds: 7, Messages: 5, TotalBits: 40, MaxMessageBits: 6}
	got := Par(a, b)
	want := Result{Rounds: 7, Messages: 15, TotalBits: 140, MaxMessageBits: 12}
	if got != want {
		t.Errorf("Par = %+v, want %+v", got, want)
	}
}

func TestSeqParAlgebraQuick(t *testing.T) {
	// Both composers are commutative in everything except Seq's round
	// sum (which is also commutative); identity is the zero Result;
	// Par rounds ≤ Seq rounds always.
	f := func(r1, m1, b1, x1, r2, m2, b2, x2 uint8) bool {
		a := Result{Rounds: int(r1), Messages: int(m1), TotalBits: int(b1), MaxMessageBits: int(x1)}
		b := Result{Rounds: int(r2), Messages: int(m2), TotalBits: int(b2), MaxMessageBits: int(x2)}
		if Seq(a, b) != Seq(b, a) || Par(a, b) != Par(b, a) {
			return false
		}
		if Seq(a, Result{}) != a || Par(a, Result{}) != a {
			return false
		}
		return Par(a, b).Rounds <= Seq(a, b).Rounds
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNetworkAccessors(t *testing.T) {
	g := graph.Ring(5)
	nw := NewNetwork(g)
	if nw.N() != 5 || nw.Graph() != g || nw.Digraph() != nil {
		t.Error("unoriented network accessors wrong")
	}
	d := graph.OrientByID(g)
	onw := NewOrientedNetwork(d)
	if onw.Digraph() != d || onw.Graph() != g {
		t.Error("oriented network accessors wrong")
	}
}

func TestContextContents(t *testing.T) {
	g := graph.Path(3)
	d := graph.OrientByID(g)
	nw := NewOrientedNetwork(d)
	ctx := nw.context(1)
	if ctx.ID != 1 {
		t.Errorf("ID = %d", ctx.ID)
	}
	if len(ctx.Neighbors) != 2 {
		t.Errorf("Neighbors = %v", ctx.Neighbors)
	}
	if len(ctx.Out) != 1 || ctx.Out[0] != 0 {
		t.Errorf("Out = %v", ctx.Out)
	}
	if len(ctx.In) != 1 || ctx.In[0] != 2 {
		t.Errorf("In = %v", ctx.In)
	}
}

func TestZeroNodeNetwork(t *testing.T) {
	g := graph.New(0)
	res, err := Run(NewNetwork(g), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || res.Messages != 0 {
		t.Errorf("empty run produced %+v", res)
	}
}

func TestUnknownDriverRejected(t *testing.T) {
	g := graph.Ring(3)
	nodes := []Node{forever{}, forever{}, forever{}}
	if _, err := Run(NewNetwork(g), nodes, Config{Driver: Driver(99)}); err == nil {
		t.Error("unknown driver accepted")
	}
}

func TestNilPayloadCountsZeroBits(t *testing.T) {
	// A node may send a nil payload (pure signal); it costs 0 bits but
	// 1 message.
	n := 2
	g := graph.Path(n)
	done := make([]bool, n)
	nodes := []Node{
		&signalNode{done: &done[0]},
		&signalNode{done: &done[1]},
	}
	res, err := Run(NewNetwork(g), nodes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 2 || res.TotalBits != 0 {
		t.Errorf("nil payloads: %+v", res)
	}
}

type signalNode struct{ done *bool }

func (s *signalNode) Init(ctx *Context) []Outgoing {
	return []Outgoing{{To: Broadcast, Payload: nil}}
}

func (s *signalNode) Round(ctx *Context, round int, inbox []Message) ([]Outgoing, bool) {
	*s.done = len(inbox) > 0
	return nil, true
}
