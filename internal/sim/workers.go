package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// runWorkers executes rounds with a fixed worker pool: node Round
// calls within a round run concurrently (they only read their own
// state and inbox), while Init calls and all routing happen
// sequentially in id order, so results are byte-identical to the
// lockstep driver.
func runWorkers(nw *Network, nodes []Node, cfg Config) (Result, error) {
	n := nw.N()
	ctxs := nw.contexts()
	rt := newRouter(nw, cfg)
	for v := 0; v < n; v++ {
		outs, err := safeInit(nodes[v], &ctxs[v])
		if err != nil {
			return rt.res, err
		}
		if err := rt.route(v, outs); err != nil {
			return rt.res, fmt.Errorf("init of node %d: %w", v, err)
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	outs := make([][]Outgoing, n)
	fins := make([]bool, n)
	errs := make([]error, n)
	// active holds the not-yet-finished node ids in ascending order; it
	// starts as all nodes and is compacted stably in place during the
	// routing pass of each round, so per-round cost tracks the shrinking
	// active set instead of rescanning all n done flags (protocols with
	// staggered termination — sweeps, Linial phases — spend most rounds
	// with a small active tail).
	active := make([]int, n)
	for v := range active {
		active[v] = v
	}
	// status records the NodeDown verdict of every active node for the
	// round in flight; only allocated when the hook is set (the workers
	// skip non-up nodes, the routing pass drops crashed ones).
	var status []NodeStatus
	if cfg.NodeDown != nil {
		status = make([]NodeStatus, n)
	}
	for round := 1; len(active) > 0; round++ {
		if round > cfg.MaxRounds {
			return rt.res, fmt.Errorf("%w: %d", ErrRoundLimit, cfg.MaxRounds)
		}
		inboxes := rt.flush()
		rt.round = round
		prevMsgs, prevBits := rt.res.Messages, rt.res.TotalBits
		activeCount := len(active)
		if cfg.NodeDown != nil {
			// Consult the hook on the coordinator in ascending id
			// order — the same schedule as the other drivers — before
			// any worker starts.
			activeCount = 0
			for _, v := range active {
				status[v] = cfg.NodeDown(round, v)
				if status[v] == NodeUp {
					activeCount++
				}
			}
		}
		var wg sync.WaitGroup
		chunk := (len(active) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(active) {
				hi = len(active)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(ids []int) {
				defer wg.Done()
				for _, v := range ids {
					if status != nil && status[v] != NodeUp {
						continue
					}
					outs[v], fins[v], errs[v] = safeRound(nodes[v], &ctxs[v], round, inboxes[v])
				}
			}(active[lo:hi])
		}
		wg.Wait()
		// Deliver the round's sends. The sharded path (shard.go) routes
		// concurrently across receiver ranges after a validation
		// prepass; it declines rounds containing any node error or
		// protocol violation, and those fall through to the sequential
		// reference loop below, which reproduces the exact partial
		// statistics and error attribution of a sequential run (the
		// prepass mutates no router output state). Both paths fill
		// every inbox in ascending sender id, send order within a
		// sender — the engine-wide delivery-order guarantee.
		routed := false
		if shards := cfg.routingShards(); shards > 1 && rt.prepare(active, status, outs, errs) {
			rt.deliverSharded(outs, shards)
			keep := active[:0]
			for _, v := range active {
				if status != nil {
					switch status[v] {
					case NodeDowned:
						keep = append(keep, v) // skipped this round, state kept
						continue
					case NodeCrashed:
						continue // dropped from the run without a final Round
					}
				}
				outs[v] = nil
				if !fins[v] {
					keep = append(keep, v)
				}
			}
			active = keep
			routed = true
		}
		if !routed {
			// Route sequentially in id order for determinism; a panic
			// is surfaced for the smallest failing id, like the other
			// drivers. The same pass compacts active in place: keep
			// reuses active's backing array and never outruns the read
			// cursor, so the order stays ascending and no per-round
			// allocation happens.
			keep := active[:0]
			for _, v := range active {
				if status != nil {
					switch status[v] {
					case NodeDowned:
						keep = append(keep, v) // skipped this round, state kept
						continue
					case NodeCrashed:
						continue // dropped from the run without a final Round
					}
				}
				if errs[v] != nil {
					return rt.res, errs[v]
				}
				if err := rt.route(v, outs[v]); err != nil {
					return rt.res, fmt.Errorf("round %d, node %d: %w", round, v, err)
				}
				outs[v] = nil
				if !fins[v] {
					keep = append(keep, v)
				}
			}
			active = keep
		}
		rt.res.Rounds = round
		if cfg.OnRound != nil {
			cfg.OnRound(RoundStats{
				Round:       round,
				ActiveNodes: activeCount,
				Messages:    rt.res.Messages - prevMsgs,
				Bits:        rt.res.TotalBits - prevBits,
				MaxBits:     rt.roundMax,
			})
		}
	}
	return rt.res, nil
}
