// Package stats provides the small statistical toolkit the benchmark
// harness uses to characterize measured series: summary statistics,
// least-squares fits, and log–log power-law exponent estimation (the
// tool that answers "does rounds grow like √Δ or like Δ?").
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the order statistics of a sample.
type Summary struct {
	N            int
	Min, Max     float64
	Mean, Stddev float64
	Median, P90  float64
}

// Summarize computes summary statistics; it panics on an empty sample
// (callers always aggregate at least one measurement).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(varSum / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantile(sorted, 0.5)
	s.P90 = quantile(sorted, 0.9)
	return s
}

// quantile returns the q-quantile of a sorted sample by linear
// interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Fit is a least-squares line y = Slope·x + Intercept with the
// coefficient of determination R².
type Fit struct {
	Slope, Intercept, R2 float64
}

// LinearFit fits y against x by ordinary least squares. It panics when
// the series lengths differ or fewer than two points are given.
func LinearFit(x, y []float64) Fit {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: series lengths %d vs %d", len(x), len(y)))
	}
	if len(x) < 2 {
		panic("stats: need at least two points to fit")
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		panic("stats: degenerate x series (all equal)")
	}
	f := Fit{}
	f.Slope = (n*sxy - sx*sy) / denom
	f.Intercept = (sy - f.Slope*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		f.R2 = 1
		return f
	}
	ssRes := 0.0
	for i := range x {
		r := y[i] - (f.Slope*x[i] + f.Intercept)
		ssRes += r * r
	}
	f.R2 = 1 - ssRes/ssTot
	return f
}

// PowerLawExponent estimates k for y ≈ c·x^k by a log–log linear fit.
// Points with a non-positive (or NaN) coordinate carry no log–log
// information — a sweep cell that measured zero rounds, for example —
// and are skipped rather than poisoning the fit; the theorem
// shape-checks feed measured series here, and a single degenerate cell
// must not crash or skew the verdict. At least two positive points
// must remain (LinearFit's precondition) or the function panics.
func PowerLawExponent(x, y []float64) Fit {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: series lengths %d vs %d", len(x), len(y)))
	}
	lx := make([]float64, 0, len(x))
	ly := make([]float64, 0, len(y))
	for i := range x {
		if !(x[i] > 0) || !(y[i] > 0) { // excludes non-positive and NaN
			continue
		}
		lx = append(lx, math.Log(x[i]))
		ly = append(ly, math.Log(y[i]))
	}
	return LinearFit(lx, ly)
}
