package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("order stats wrong: %+v", s)
	}
	if !almostEqual(s.Mean, 3, 1e-12) {
		t.Errorf("Mean = %v", s.Mean)
	}
	if !almostEqual(s.Stddev, math.Sqrt(2.5), 1e-12) {
		t.Errorf("Stddev = %v", s.Stddev)
	}
	if !almostEqual(s.Median, 3, 1e-12) {
		t.Errorf("Median = %v", s.Median)
	}
	if !almostEqual(s.P90, 4.6, 1e-12) {
		t.Errorf("P90 = %v", s.P90)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Median != 7 || s.Stddev != 0 || s.P90 != 7 {
		t.Errorf("singleton summary wrong: %+v", s)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty sample did not panic")
		}
	}()
	Summarize(nil)
}

func TestSummarizeBoundsQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Median <= s.P90 && s.P90 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearFitExact(t *testing.T) {
	// y = 2x + 1 exactly.
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9}
	f := LinearFit(x, y)
	if !almostEqual(f.Slope, 2, 1e-12) || !almostEqual(f.Intercept, 1, 1e-12) || !almostEqual(f.R2, 1, 1e-12) {
		t.Errorf("fit = %+v", f)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x, y []float64
	for i := 1; i <= 200; i++ {
		x = append(x, float64(i))
		y = append(y, 3*float64(i)-5+rng.NormFloat64())
	}
	f := LinearFit(x, y)
	if !almostEqual(f.Slope, 3, 0.01) {
		t.Errorf("Slope = %v, want ≈3", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Errorf("R2 = %v", f.R2)
	}
}

func TestLinearFitPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"length mismatch": func() { LinearFit([]float64{1}, []float64{1, 2}) },
		"too few points":  func() { LinearFit([]float64{1}, []float64{1}) },
		"degenerate x":    func() { LinearFit([]float64{2, 2}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPowerLawExponent(t *testing.T) {
	// y = 5·x^1.5.
	var x, y []float64
	for i := 1; i <= 40; i++ {
		x = append(x, float64(i))
		y = append(y, 5*math.Pow(float64(i), 1.5))
	}
	f := PowerLawExponent(x, y)
	if !almostEqual(f.Slope, 1.5, 1e-9) {
		t.Errorf("exponent = %v, want 1.5", f.Slope)
	}
	// sqrt vs linear distinguishable: y = √x has exponent 0.5.
	var y2 []float64
	for i := 1; i <= 40; i++ {
		y2 = append(y2, math.Sqrt(float64(i)))
	}
	if got := PowerLawExponent(x, y2).Slope; !almostEqual(got, 0.5, 1e-9) {
		t.Errorf("sqrt exponent = %v", got)
	}
}

func TestPowerLawSkipsNonPositivePoints(t *testing.T) {
	// Zero / negative / NaN cells are dropped from the fit instead of
	// panicking (they used to crash the bench shape-checks) — the fit
	// over the remaining points is unchanged.
	var x, y []float64
	for i := 1; i <= 30; i++ {
		x = append(x, float64(i))
		y = append(y, 5*math.Pow(float64(i), 1.5))
	}
	clean := PowerLawExponent(x, y)
	dirtyX := append([]float64{0, 7, -3, math.NaN()}, x...)
	dirtyY := append([]float64{12, 0, 4, 8}, y...)
	dirty := PowerLawExponent(dirtyX, dirtyY)
	if !almostEqual(dirty.Slope, clean.Slope, 1e-12) || !almostEqual(dirty.R2, clean.R2, 1e-12) {
		t.Errorf("fit with degenerate points %+v != clean fit %+v", dirty, clean)
	}
}

func TestPowerLawPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"length mismatch":     func() { PowerLawExponent([]float64{1, 2}, []float64{1}) },
		"all non-positive":    func() { PowerLawExponent([]float64{0, -1}, []float64{1, 2}) },
		"one positive point":  func() { PowerLawExponent([]float64{1, 0}, []float64{1, 2}) },
		"degenerate survivor": func() { PowerLawExponent([]float64{2, 2, 0}, []float64{1, 2, 3}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestQuantileClosedForm(t *testing.T) {
	// Linear interpolation between closest ranks (the "type 7"
	// convention): pos = q·(n−1), result = lerp(sorted[⌊pos⌋],
	// sorted[⌈pos⌉]). Even-length samples exercise the interpolated
	// branch for the median.
	cases := []struct {
		name           string
		xs             []float64
		q              float64
		want           float64
		median, p90    float64
		checkSummarize bool
	}{
		{name: "even median", xs: []float64{4, 1, 3, 2}, q: 0.5, want: 2.5, median: 2.5, p90: 3.7, checkSummarize: true},
		{name: "odd median", xs: []float64{3, 1, 2}, q: 0.5, want: 2, median: 2, p90: 2.8, checkSummarize: true},
		{name: "even six", xs: []float64{60, 10, 30, 50, 20, 40}, q: 0.5, want: 35, median: 35, p90: 55, checkSummarize: true},
		{name: "pair quarter", xs: []float64{1, 2}, q: 0.25, want: 1.25},
		{name: "q0", xs: []float64{5, 9, 7}, q: 0, want: 5},
		{name: "q1", xs: []float64{5, 9, 7}, q: 1, want: 9},
		{name: "repeated", xs: []float64{2, 2, 2, 2}, q: 0.9, want: 2},
	}
	for _, tc := range cases {
		sorted := append([]float64(nil), tc.xs...)
		sort.Float64s(sorted)
		if got := quantile(sorted, tc.q); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("%s: quantile(%v, %v) = %v, want %v", tc.name, sorted, tc.q, got, tc.want)
		}
		if tc.checkSummarize {
			s := Summarize(tc.xs)
			if !almostEqual(s.Median, tc.median, 1e-12) || !almostEqual(s.P90, tc.p90, 1e-12) {
				t.Errorf("%s: Summarize median/p90 = %v/%v, want %v/%v", tc.name, s.Median, s.P90, tc.median, tc.p90)
			}
		}
	}
}
