package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("order stats wrong: %+v", s)
	}
	if !almostEqual(s.Mean, 3, 1e-12) {
		t.Errorf("Mean = %v", s.Mean)
	}
	if !almostEqual(s.Stddev, math.Sqrt(2.5), 1e-12) {
		t.Errorf("Stddev = %v", s.Stddev)
	}
	if !almostEqual(s.Median, 3, 1e-12) {
		t.Errorf("Median = %v", s.Median)
	}
	if !almostEqual(s.P90, 4.6, 1e-12) {
		t.Errorf("P90 = %v", s.P90)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Median != 7 || s.Stddev != 0 || s.P90 != 7 {
		t.Errorf("singleton summary wrong: %+v", s)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty sample did not panic")
		}
	}()
	Summarize(nil)
}

func TestSummarizeBoundsQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Median <= s.P90 && s.P90 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearFitExact(t *testing.T) {
	// y = 2x + 1 exactly.
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9}
	f := LinearFit(x, y)
	if !almostEqual(f.Slope, 2, 1e-12) || !almostEqual(f.Intercept, 1, 1e-12) || !almostEqual(f.R2, 1, 1e-12) {
		t.Errorf("fit = %+v", f)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x, y []float64
	for i := 1; i <= 200; i++ {
		x = append(x, float64(i))
		y = append(y, 3*float64(i)-5+rng.NormFloat64())
	}
	f := LinearFit(x, y)
	if !almostEqual(f.Slope, 3, 0.01) {
		t.Errorf("Slope = %v, want ≈3", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Errorf("R2 = %v", f.R2)
	}
}

func TestLinearFitPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"length mismatch": func() { LinearFit([]float64{1}, []float64{1, 2}) },
		"too few points":  func() { LinearFit([]float64{1}, []float64{1}) },
		"degenerate x":    func() { LinearFit([]float64{2, 2}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPowerLawExponent(t *testing.T) {
	// y = 5·x^1.5.
	var x, y []float64
	for i := 1; i <= 40; i++ {
		x = append(x, float64(i))
		y = append(y, 5*math.Pow(float64(i), 1.5))
	}
	f := PowerLawExponent(x, y)
	if !almostEqual(f.Slope, 1.5, 1e-9) {
		t.Errorf("exponent = %v, want 1.5", f.Slope)
	}
	// sqrt vs linear distinguishable: y = √x has exponent 0.5.
	var y2 []float64
	for i := 1; i <= 40; i++ {
		y2 = append(y2, math.Sqrt(float64(i)))
	}
	if got := PowerLawExponent(x, y2).Slope; !almostEqual(got, 0.5, 1e-9) {
		t.Errorf("sqrt exponent = %v", got)
	}
}

func TestPowerLawPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive input did not panic")
		}
	}()
	PowerLawExponent([]float64{1, 0}, []float64{1, 2})
}
