package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestAnnotateAndEvents(t *testing.T) {
	var rec Recorder
	if got := rec.Events(); len(got) != 0 {
		t.Fatalf("fresh recorder has %d events", len(got))
	}
	rec.Annotate(2, "crash-stop", "node 3 crashes")
	rec.Annotate(1, "corrupt", "all edges at rate 0.10")
	rec.Annotate(9, "phase", "") // detail optional, out-of-range round legal
	evs := rec.Events()
	want := []Event{
		{Round: 2, Kind: "crash-stop", Detail: "node 3 crashes"},
		{Round: 1, Kind: "corrupt", Detail: "all edges at rate 0.10"},
		{Round: 9, Kind: "phase"},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Errorf("Events() = %+v, want insertion order %+v", evs, want)
	}
	rec.Reset()
	if len(rec.Events()) != 0 || rec.Len() != 0 {
		t.Error("Reset did not clear events")
	}
}

func TestEventsJSONLRoundTrip(t *testing.T) {
	var rec Recorder
	rec.Annotate(3, "link-down", "link {0,4} dead through round 6")
	rec.Annotate(1, "crash-recover", "node 2 down through round 2")
	var buf bytes.Buffer
	if err := rec.WriteEventsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEventsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rec.Events()) {
		t.Errorf("round trip: %+v vs %+v", back, rec.Events())
	}
	// The event stream must not contaminate the round-stats stream.
	var rbuf bytes.Buffer
	if err := rec.WriteJSONL(&rbuf); err != nil {
		t.Fatal(err)
	}
	if rbuf.Len() != 0 {
		t.Errorf("round stream contains %d bytes for an events-only recorder", rbuf.Len())
	}
}

func TestReadEventsJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadEventsJSONL(strings.NewReader("{nope")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestTimelineShowsEvents(t *testing.T) {
	rec := recordLinialRun(t)
	rec.Annotate(2, "crash-stop", "node 7 crashes")
	out := rec.Timeline(40)
	if !strings.Contains(out, "events: 1 annotated") {
		t.Errorf("timeline missing event count:\n%s", out)
	}
	if !strings.Contains(out, "crash-stop") || !strings.Contains(out, "node 7 crashes") {
		t.Errorf("timeline missing event line:\n%s", out)
	}
	// Without events, the section is absent.
	rec2 := recordLinialRun(t)
	if strings.Contains(rec2.Timeline(40), "events:") {
		t.Error("event section rendered with no events")
	}
}
