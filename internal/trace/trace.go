// Package trace records the per-round progression of a simulator run
// — active nodes, message volume, bit volume — and renders it for
// humans (a sparkline-style ASCII timeline) or machines (JSON lines).
// It plugs into sim.Config.OnRound, so tracing requires no changes to
// protocols.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"listcolor/internal/sim"
)

// Recorder collects RoundStats and, optionally, point-in-time
// annotations (the adversary layer uses them to mark injected
// faults). The zero value is ready to use; attach it with Attach or
// by passing Hook() as Config.OnRound.
type Recorder struct {
	rounds []sim.RoundStats
	events []Event
}

// Event is an annotation pinned to a round — a fault injection, a
// phase transition, anything worth seeing next to the per-round
// statistics.
type Event struct {
	Round  int    `json:"round"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// Annotate records an event at the given round. Events are kept in
// insertion order; they need not be sorted and may reference rounds
// the run never reached.
func (r *Recorder) Annotate(round int, kind, detail string) {
	r.events = append(r.events, Event{Round: round, Kind: kind, Detail: detail})
}

// Events returns the recorded annotations (owned by the recorder).
func (r *Recorder) Events() []Event { return r.events }

// Hook returns the callback to install as sim.Config.OnRound.
func (r *Recorder) Hook() func(sim.RoundStats) {
	return func(rs sim.RoundStats) { r.rounds = append(r.rounds, rs) }
}

// Attach installs the recorder into cfg (chaining any existing hook)
// and returns the modified config.
func (r *Recorder) Attach(cfg sim.Config) sim.Config {
	prev := cfg.OnRound
	hook := r.Hook()
	cfg.OnRound = func(rs sim.RoundStats) {
		hook(rs)
		if prev != nil {
			prev(rs)
		}
	}
	return cfg
}

// Len returns the number of recorded rounds.
func (r *Recorder) Len() int { return len(r.rounds) }

// Rounds returns the recorded stats (owned by the recorder).
func (r *Recorder) Rounds() []sim.RoundStats { return r.rounds }

// Reset discards all recorded rounds and events.
func (r *Recorder) Reset() { r.rounds, r.events = nil, nil }

// WriteEventsJSONL emits one JSON object per recorded annotation.
// Kept separate from WriteJSONL so the round stream stays parseable
// by ReadJSONL.
func (r *Recorder) WriteEventsJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.events {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: encoding event at round %d: %w", e.Round, err)
		}
	}
	return nil
}

// ReadEventsJSONL parses a stream written by WriteEventsJSONL.
func ReadEventsJSONL(rd io.Reader) ([]Event, error) {
	dec := json.NewDecoder(rd)
	var out []Event
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("trace: decoding event %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
	return out, nil
}

// WriteJSONL emits one JSON object per recorded round.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rs := range r.rounds {
		if err := enc.Encode(rs); err != nil {
			return fmt.Errorf("trace: encoding round %d: %w", rs.Round, err)
		}
	}
	return nil
}

// ReadJSONL parses a stream written by WriteJSONL.
func ReadJSONL(rd io.Reader) ([]sim.RoundStats, error) {
	dec := json.NewDecoder(rd)
	var out []sim.RoundStats
	for dec.More() {
		var rs sim.RoundStats
		if err := dec.Decode(&rs); err != nil {
			return nil, fmt.Errorf("trace: decoding round %d: %w", len(out)+1, err)
		}
		out = append(out, rs)
	}
	return out, nil
}

// sparkLevels are the eight block characters used by the timeline.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// spark renders values as a block-character sparkline scaled to the
// series maximum.
func spark(values []int) string {
	max := 0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if max > 0 {
			idx = v * (len(sparkLevels) - 1) / max
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// Timeline renders the recorded run as an ASCII report: one sparkline
// per metric, downsampled to at most width columns (each column
// aggregates a bucket of consecutive rounds by sum for volumes and max
// for active nodes).
func (r *Recorder) Timeline(width int) string {
	if len(r.rounds) == 0 {
		return "trace: no rounds recorded\n"
	}
	if width < 1 {
		width = 80
	}
	buckets := len(r.rounds)
	if buckets > width {
		buckets = width
	}
	active := make([]int, buckets)
	msgs := make([]int, buckets)
	bits := make([]int, buckets)
	for i, rs := range r.rounds {
		b := i * buckets / len(r.rounds)
		if rs.ActiveNodes > active[b] {
			active[b] = rs.ActiveNodes
		}
		msgs[b] += rs.Messages
		bits[b] += rs.Bits
	}
	total := sim.Result{}
	for _, rs := range r.rounds {
		total.Messages += rs.Messages
		total.TotalBits += rs.Bits
	}
	var out strings.Builder
	fmt.Fprintf(&out, "rounds: %d   messages: %d   bits: %d\n", len(r.rounds), total.Messages, total.TotalBits)
	fmt.Fprintf(&out, "active   |%s|\n", spark(active))
	fmt.Fprintf(&out, "messages |%s|\n", spark(msgs))
	fmt.Fprintf(&out, "bits     |%s|\n", spark(bits))
	if len(r.events) > 0 {
		fmt.Fprintf(&out, "events: %d annotated\n", len(r.events))
		for _, e := range r.events {
			fmt.Fprintf(&out, "  r%-5d %-14s %s\n", e.Round, e.Kind, e.Detail)
		}
	}
	return out.String()
}
