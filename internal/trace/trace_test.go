package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"listcolor/internal/graph"
	"listcolor/internal/linial"
	"listcolor/internal/sim"
)

func recordLinialRun(t *testing.T) *Recorder {
	t.Helper()
	rec := &Recorder{}
	g := graph.RandomRegular(128, 6, rand.New(rand.NewSource(42)))
	if _, err := linial.ColorFromIDs(g, rec.Attach(sim.Config{})); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestRecorderCapturesRounds(t *testing.T) {
	rec := recordLinialRun(t)
	if rec.Len() == 0 {
		t.Fatal("no rounds recorded")
	}
	for i, rs := range rec.Rounds() {
		if rs.Round != i+1 {
			t.Errorf("round %d recorded as %d", i+1, rs.Round)
		}
	}
}

func TestAttachChains(t *testing.T) {
	rec := &Recorder{}
	called := 0
	cfg := rec.Attach(sim.Config{OnRound: func(sim.RoundStats) { called++ }})
	g := graph.Ring(16)
	if _, err := linial.ColorFromIDs(g, cfg); err != nil {
		t.Fatal(err)
	}
	if called != rec.Len() || called == 0 {
		t.Errorf("chained hook called %d times, recorder has %d", called, rec.Len())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	rec := recordLinialRun(t)
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != rec.Len() {
		t.Fatalf("round trip lost rounds: %d vs %d", len(got), rec.Len())
	}
	for i := range got {
		if got[i] != rec.Rounds()[i] {
			t.Fatalf("round %d differs: %+v vs %+v", i, got[i], rec.Rounds()[i])
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestTimelineRendering(t *testing.T) {
	rec := recordLinialRun(t)
	out := rec.Timeline(40)
	for _, want := range []string{"rounds:", "active", "messages", "bits"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// Downsampling: sparkline no wider than requested.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") {
			inner := line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
			if len([]rune(inner)) > 40 {
				t.Errorf("sparkline wider than 40: %d", len([]rune(inner)))
			}
		}
	}
}

func TestTimelineEmpty(t *testing.T) {
	rec := &Recorder{}
	if !strings.Contains(rec.Timeline(10), "no rounds") {
		t.Error("empty timeline message missing")
	}
	rec.Reset()
	if rec.Len() != 0 {
		t.Error("Reset failed")
	}
}

func TestSparkShapes(t *testing.T) {
	if got := spark([]int{0, 0, 0}); got != "▁▁▁" {
		t.Errorf("all-zero spark = %q", got)
	}
	got := spark([]int{0, 4, 8})
	runes := []rune(got)
	if len(runes) != 3 || runes[0] != '▁' || runes[2] != '█' {
		t.Errorf("spark([0,4,8]) = %q", got)
	}
}
