package twosweep

import (
	"errors"
	"math/rand"
	"testing"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/sim"
)

// TestSlackBoundaryExact probes the exact boundary of Equation (2):
// Σ(d+1) = max{p,|L|/p}·β must be rejected, Σ(d+1) = that value + 1
// must succeed and produce a valid OLDC.
func TestSlackBoundaryExact(t *testing.T) {
	// Directed clique-ish: node i points at all j < i, so β_v = v.
	n := 8
	g := graph.Complete(n)
	d := graph.OrientByID(g)
	init := make([]int, n)
	for v := range init {
		init[v] = v // ids are a proper n-coloring of K_n
	}
	p := 2
	build := func(extra int) *coloring.Instance {
		inst := &coloring.Instance{Space: 64, Lists: make([][]int, n), Defects: make([][]int, n)}
		for v := 0; v < n; v++ {
			beta := d.Beta(v)
			k := p * p // |L| = p² so max{p, |L|/p} = p
			budget := p*beta + extra
			if budget < k {
				budget = k + extra // keep the relative margin for sinks
			}
			inst.Lists[v] = make([]int, k)
			for i := range inst.Lists[v] {
				inst.Lists[v][i] = i * 3
			}
			inst.Defects[v] = make([]int, k)
			rem := budget - k
			for i := 0; rem > 0; i = (i + 1) % k {
				inst.Defects[v][i]++
				rem--
			}
			// Node with outdeg 0 is exempt from the check; ensure lists
			// stay non-empty regardless.
		}
		return inst
	}
	// Exactly at the boundary: rejected.
	if _, err := Solve(d, build(0), init, n, p, sim.Config{}); !errors.Is(err, ErrSlack) {
		t.Errorf("boundary instance: err = %v, want ErrSlack", err)
	}
	// One above: succeeds and validates.
	res, err := Solve(d, build(1), init, n, p, sim.Config{})
	if err != nil {
		t.Fatalf("boundary+1 instance: %v", err)
	}
	if err := coloring.ValidateOLDC(d, build(1), res.Colors); err != nil {
		t.Error(err)
	}
}

// TestPhaseIIAlwaysFindsColor floods many trials of the tightest
// instances the generator can make and asserts Phase II never gets
// stuck (Lemma 3.2 is a worst-case guarantee, so a single failure
// would falsify the implementation).
func TestPhaseIIAlwaysFindsColor(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 20 + trial%30
		g := graph.GNP(n, 0.35, rng)
		d := graph.OrientRandom(g, rng)
		init := make([]int, n)
		for v := range init {
			init[v] = v
		}
		p := 1 + trial%3
		inst := coloring.MinSlackOriented(d, 4*p*p+10, p, 0, rng)
		res, err := Solve(d, inst, init, n, p, sim.Config{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := coloring.ValidateOLDC(d, inst, res.Colors); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestSingleClassColoring runs on an edgeless graph: the protocol
// short-circuits to a single round (no conflicts are possible).
func TestSingleClassColoring(t *testing.T) {
	g := graph.New(5)
	d := graph.OrientByID(g)
	inst := &coloring.Instance{Space: 2, Lists: make([][]int, 5), Defects: make([][]int, 5)}
	for v := 0; v < 5; v++ {
		inst.Lists[v] = []int{1}
		inst.Defects[v] = []int{1} // Σ(d+1) = 2 > 1·β_v = 1
	}
	res, err := Solve(d, inst, make([]int, 5), 1, 1, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1 (edgeless fast path)", res.Stats.Rounds)
	}
	for v, c := range res.Colors {
		if c != 1 {
			t.Errorf("node %d color %d, want 1", v, c)
		}
	}
}

// TestHugePClampsToList exercises p far larger than any list: S_v is
// the whole list and the algorithm degenerates to one-shot selection.
func TestHugePClampsToList(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.Ring(12)
	d := graph.OrientByID(g)
	init := make([]int, 12)
	for v := range init {
		init[v] = v
	}
	p := 50
	inst := coloring.Uniform(12, 200, 4, 25, rng) // Σ(d+1) = 104 > 50·2
	res, err := Solve(d, inst, init, 12, p, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.ValidateOLDC(d, inst, res.Colors); err != nil {
		t.Error(err)
	}
}

// FuzzSolve drives the full Two-Sweep pipeline from fuzzed parameters:
// whatever the inputs, the algorithm must either reject cleanly or
// produce a valid OLDC.
func FuzzSolve(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(1), uint8(2))
	f.Add(int64(2), uint8(30), uint8(2), uint8(0))
	f.Add(int64(3), uint8(50), uint8(3), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, rawN, rawP, rawDef uint8) {
		n := int(rawN%40) + 4
		p := int(rawP%4) + 1
		extraDefect := int(rawDef % 8)
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.3, rng)
		d := graph.OrientRandom(g, rng)
		init := make([]int, n)
		for v := range init {
			init[v] = v
		}
		inst := coloring.Uniform(n, 4*p*p+16, p*p, extraDefect, rng)
		res, err := Solve(d, inst, init, n, p, sim.Config{})
		if err != nil {
			if errors.Is(err, ErrSlack) {
				return // correctly rejected
			}
			t.Fatalf("unexpected error class: %v", err)
		}
		if err := coloring.ValidateOLDC(d, inst, res.Colors); err != nil {
			t.Fatalf("accepted run produced invalid OLDC: %v", err)
		}
	})
}
