package twosweep

import (
	"errors"
	"strings"
	"testing"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/sim"
)

// Regression tests for the DESIGN.md deviation "Zero-out-degree
// nodes": CheckSlack skips nodes with out-degree 0 (they trivially
// succeed in both sweep phases), because β_v = max(1, outdeg) would
// otherwise reject recursion leaves with tiny lists.

// zeroOutdegInstance is the oriented 3-path (OrientByID: arcs 1→0,
// 2→1). Node 0 has out-degree 0 and carries a singleton zero-defect
// list that the raw Eq. 2 inequality with β_0 = 1 would reject
// (Σ(d+1) = 1 which is not > p = 2). Nodes 1 and 2 satisfy the strict
// condition.
func zeroOutdegInstance() (*graph.Digraph, *coloring.Instance) {
	g := graph.Path(3)
	d := graph.OrientByID(g)
	return d, &coloring.Instance{
		Space:   2,
		Lists:   [][]int{{0}, {0, 1}, {0, 1}},
		Defects: [][]int{{0}, {1, 0}, {1, 0}},
	}
}

func TestCheckSlackSkipsZeroOutdegree(t *testing.T) {
	d, inst := zeroOutdegInstance()
	if err := CheckSlack(d, inst, 2, 0); err != nil {
		t.Fatalf("slack check rejected a zero-out-degree node with a tiny list: %v", err)
	}
}

func TestSolveSucceedsWithZeroOutdegreeTinyList(t *testing.T) {
	d, inst := zeroOutdegInstance()
	res, err := Solve(d, inst, []int{0, 1, 2}, 3, 2, sim.Config{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := coloring.ValidateOLDC(d, inst, res.Colors); err != nil {
		t.Fatalf("output invalid: %v", err)
	}
	if res.Colors[0] != 0 {
		t.Errorf("node 0 forced to its only color 0, got %d", res.Colors[0])
	}
}

// TestCheckSlackStillStrictForPositiveOutdegree pins that the skip is
// ONLY for out-degree 0: a positive-out-degree node with the same
// insufficient list must still be rejected, and the error must name
// it.
func TestCheckSlackStillStrictForPositiveOutdegree(t *testing.T) {
	g := graph.Path(3)
	d := graph.OrientByID(g)
	inst := &coloring.Instance{
		Space:   2,
		Lists:   [][]int{{0, 1}, {0}, {0, 1}},
		Defects: [][]int{{1, 0}, {0}, {1, 0}},
	}
	err := CheckSlack(d, inst, 2, 0)
	if err == nil {
		t.Fatal("insufficient slack at a positive-out-degree node was accepted")
	}
	if !errors.Is(err, ErrSlack) {
		t.Errorf("err = %v, want ErrSlack", err)
	}
	if !strings.Contains(err.Error(), "node 1") {
		t.Errorf("error does not name the violating node 1: %v", err)
	}
}

// TestSolveAllZeroOutdegree covers the degenerate extreme: an edgeless
// graph where every node has out-degree 0 and a singleton list.
func TestSolveAllZeroOutdegree(t *testing.T) {
	g := graph.New(4)
	d := graph.OrientByID(g)
	inst := &coloring.Instance{
		Space:   1,
		Lists:   [][]int{{0}, {0}, {0}, {0}},
		Defects: [][]int{{0}, {0}, {0}, {0}},
	}
	res, err := Solve(d, inst, []int{0, 0, 0, 0}, 1, 2, sim.Config{})
	if err != nil {
		t.Fatalf("Solve on edgeless graph: %v", err)
	}
	if err := coloring.ValidateOLDC(d, inst, res.Colors); err != nil {
		t.Fatalf("output invalid: %v", err)
	}
}
