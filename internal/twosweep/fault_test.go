package twosweep

import (
	"math/rand"
	"testing"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/sim"
)

// TestValidatorsCatchLinkFailures runs the Two-Sweep algorithm under
// heavy message loss — which the paper's synchronous reliable model
// forbids — and checks two things across many seeds: the run never
// panics, and at least one damaged run produces an output the OLDC
// validator rejects (so the validation layer is load-bearing, not
// vacuous).
func TestValidatorsCatchLinkFailures(t *testing.T) {
	caught := 0
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 24
		g := graph.GNP(n, 0.35, rng)
		d := graph.OrientRandom(g, rng)
		init := make([]int, n)
		for v := range init {
			init[v] = v
		}
		p := 2
		inst := coloring.MinSlackOriented(d, 4*p*p+10, p, 0, rng)
		dropRng := rand.New(rand.NewSource(seed * 31))
		res, err := Solve(d, inst, init, n, p, sim.Config{
			DropMessage: func(round, from, to int) bool { return dropRng.Intn(2) == 0 },
		})
		if err != nil {
			caught++ // detected as ErrStuck or similar — fine
			continue
		}
		if coloring.ValidateOLDC(d, inst, res.Colors) != nil {
			caught++
		}
	}
	if caught == 0 {
		t.Error("50% message loss never produced a detected failure across 20 seeds — validators may be vacuous")
	}
}

// TestCleanRunsSurviveValidator is the control: without drops the same
// seeds always validate.
func TestCleanRunsSurviveValidator(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 24
		g := graph.GNP(n, 0.35, rng)
		d := graph.OrientRandom(g, rng)
		init := make([]int, n)
		for v := range init {
			init[v] = v
		}
		p := 2
		inst := coloring.MinSlackOriented(d, 4*p*p+10, p, 0, rng)
		res, err := Solve(d, inst, init, n, p, sim.Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := coloring.ValidateOLDC(d, inst, res.Colors); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
