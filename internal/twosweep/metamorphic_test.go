package twosweep

import (
	"math/rand"
	"testing"
	"testing/quick"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/sim"
)

// TestRelabelingInvariance is a metamorphic test: relabeling the
// vertices (and permuting the instance, orientation and initial
// coloring accordingly) must not affect validity. The concrete colors
// may differ — the sweep order changes — but the OLDC guarantee is
// label-independent.
func TestRelabelingInvariance(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%20) + 8
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.3, rng)
		ids := make([]int, n)
		for v := range ids {
			ids[v] = v
		}
		p := 2
		d := graph.OrientByID(g)
		inst := coloring.MinSlackOriented(d, 40, p, 0, rng)

		// Original run.
		res, err := Solve(d, inst, ids, n, p, sim.Config{})
		if err != nil || coloring.ValidateOLDC(d, inst, res.Colors) != nil {
			return false
		}

		// Relabeled run: vertex v becomes perm[v] everywhere.
		perm := rng.Perm(n)
		g2 := graph.Relabel(g, perm)
		inst2 := &coloring.Instance{
			Space:   inst.Space,
			Lists:   make([][]int, n),
			Defects: make([][]int, n),
		}
		init2 := make([]int, n)
		rank2 := make([]int, n)
		for v := 0; v < n; v++ {
			inst2.Lists[perm[v]] = inst.Lists[v]
			inst2.Defects[perm[v]] = inst.Defects[v]
			init2[perm[v]] = ids[v]
			rank2[perm[v]] = v // preserve the ORIGINAL orientation: arcs toward smaller original id
		}
		d2, err := graph.OrientByRank(g2, rank2)
		if err != nil {
			return false
		}
		res2, err := Solve(d2, inst2, init2, n, p, sim.Config{})
		if err != nil {
			return false
		}
		return coloring.ValidateOLDC(d2, inst2, res2.Colors) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestExactIsomorphismWhenOrderPreserved goes further: when the
// permutation preserves BOTH the initial coloring and the orientation,
// the algorithm must produce the permuted coloring exactly — the
// protocol's decisions depend only on its declared inputs.
func TestExactIsomorphismWhenOrderPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 18
	g := graph.GNP(n, 0.35, rng)
	ids := make([]int, n)
	for v := range ids {
		ids[v] = v
	}
	p := 2
	d := graph.OrientByID(g)
	inst := coloring.MinSlackOriented(d, 36, p, 0, rng)
	res, err := Solve(d, inst, ids, n, p, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Identity-preserving "permutation" (the only one preserving the
	// id-based initial coloring AND orientation is the identity, so
	// this is a self-consistency determinism check across repeats).
	res2, err := Solve(d, inst, ids, n, p, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range res.Colors {
		if res.Colors[v] != res2.Colors[v] {
			t.Fatalf("repeat run differs at node %d", v)
		}
	}
}
