package twosweep

// Differential tests for the palette-kernel Phase-I selection: the
// map-based selectors in internal/baseline (SelectSort and
// SelectBruteForce) are the retained pre-kernel reference
// implementations, kept as the oracle. Both the table test and the
// fuzz target feed the kernel selector and its reference identical
// inputs and demand identical colors AND identical ops counts — the
// deterministic local-computation measure benchmarks E6/E15 report
// must not drift when the representation changes.

import (
	"testing"

	"listcolor/internal/baseline"
	"listcolor/internal/palette"
)

// buildK materializes the same k function both ways: a map keyed by
// color for the reference and a kernel Counter for the palette path.
func buildK(list []int, vals []int, space int) (map[int]int, *palette.Counter) {
	m := make(map[int]int, len(list))
	c := palette.NewCounter(space)
	for i, x := range list {
		m[x] = vals[i%len(vals)]
		c.AddN(x, vals[i%len(vals)])
	}
	return m, c
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSortSelectorMatchesMapReference drives the kernel sort selector
// and the retained map-based reference over a matrix of list shapes:
// dense and sparse color values, word-boundary colors (≥64), ties in
// the score, k exceeding d, lists shorter and longer than p. Colors
// and ops must match exactly on every cell.
func TestSortSelectorMatchesMapReference(t *testing.T) {
	type cell struct {
		name    string
		list    []int
		defects []int
		kvals   []int
		p       int
	}
	mk := func(n, stride, offset int) []int {
		xs := make([]int, n)
		for i := range xs {
			xs[i] = offset + i*stride
		}
		return xs
	}
	cells := []cell{
		{"singleton", []int{0}, []int{3}, []int{1}, 1},
		{"dense-small", mk(5, 1, 0), []int{4, 1, 3, 1, 2}, []int{0, 2, 1}, 2},
		{"all-ties", mk(8, 2, 0), []int{2, 2, 2, 2, 2, 2, 2, 2}, []int{1}, 3},
		{"k-exceeds-d", mk(6, 3, 1), []int{0, 1, 0, 2, 0, 1}, []int{5, 3, 7}, 4},
		{"word-boundary-colors", mk(9, 16, 60), []int{1, 5, 2, 8, 0, 3, 7, 4, 6}, []int{2, 0, 4}, 3},
		{"p-exceeds-list", mk(3, 1, 64), []int{1, 2, 3}, []int{0}, 8},
		{"long-list", mk(64, 5, 0), mk(64, 1, 0), []int{3, 0, 1, 4, 2}, 8},
		{"descending-scores", mk(33, 2, 0), mk(33, 1, 0), []int{0}, 5},
	}
	for _, c := range cells {
		t.Run(c.name, func(t *testing.T) {
			space := c.list[len(c.list)-1] + 1
			km, kc := buildK(c.list, c.kvals, space)
			scratch := palette.NewSelectScratch()
			got, gotOps := SortSelector(c.list, c.defects, kc, c.p, scratch)
			ref := baseline.SelectSort(c.list, c.defects, km, c.p)
			if !equalInts(got, ref.Colors) {
				t.Fatalf("colors diverge: kernel %v, reference %v", got, ref.Colors)
			}
			if gotOps != ref.Ops {
				t.Fatalf("ops diverge: kernel %d, reference %d", gotOps, ref.Ops)
			}
		})
	}
}

// TestSubsetSelectorMatchesMapReference does the same for the
// exhaustive subset search: SelectBruteForceCounter (what
// SubsetSelector runs on) against the retained map-based
// SelectBruteForce.
func TestSubsetSelectorMatchesMapReference(t *testing.T) {
	lists := [][]int{
		{0},
		{0, 1, 2, 3},
		{1, 4, 9, 16, 25, 36},
		{60, 62, 64, 66, 68, 70, 72, 74, 76, 78},
	}
	for _, list := range lists {
		defects := make([]int, len(list))
		kvals := make([]int, len(list))
		for i := range list {
			defects[i] = (i * 5) % 7
			kvals[i] = (i * 3) % 4
		}
		for p := 1; p <= len(list)+1; p++ {
			space := list[len(list)-1] + 1
			km, kc := buildK(list, kvals, space)
			gotColors, gotOps := baseline.SubsetSelector(list, defects, kc, p, nil)
			ref := baseline.SelectBruteForce(list, defects, km, p)
			if !equalInts(gotColors, ref.Colors) {
				t.Fatalf("list %v p %d: colors diverge: %v vs %v", list, p, gotColors, ref.Colors)
			}
			if gotOps != ref.Ops {
				t.Fatalf("list %v p %d: ops diverge: %d vs %d", list, p, gotOps, ref.Ops)
			}
		}
	}
}

// decodeSelectorInput builds a valid selector input from fuzz bytes: a
// strictly ascending list with arbitrary gaps (crossing word
// boundaries for larger inputs), bounded defects and k values, and a
// p in [1, Λ+2].
func decodeSelectorInput(data []byte) (list, defects []int, kvals []int, p, space int) {
	read := func(i int) int {
		if len(data) == 0 {
			return 0
		}
		return int(data[i%len(data)])
	}
	n := read(0)%12 + 1
	list = make([]int, n)
	defects = make([]int, n)
	kvals = make([]int, n)
	x := read(1) % 8
	for i := 0; i < n; i++ {
		list[i] = x
		x += read(2+i)%9 + 1
		defects[i] = read(20+i) % 9
		kvals[i] = read(40+i) % 6
	}
	p = read(60)%(n+2) + 1
	space = list[n-1] + 1
	return
}

// FuzzSelectorEquivalence feeds both selector pairs adversarial
// list/defect/k/p combinations and demands identical colors and ops.
func FuzzSelectorEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0})
	f.Add([]byte{11, 7, 8, 8, 8, 8, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{5, 3, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		list, defects, kvals, p, space := decodeSelectorInput(data)
		km, kc := buildK(list, kvals, space)
		scratch := palette.NewSelectScratch()
		gotColors, gotOps := SortSelector(list, defects, kc, p, scratch)
		ref := baseline.SelectSort(list, defects, km, p)
		if !equalInts(gotColors, ref.Colors) || gotOps != ref.Ops {
			t.Fatalf("sort: kernel %v/%d, reference %v/%d", gotColors, gotOps, ref.Colors, ref.Ops)
		}
		subColors, subOps := baseline.SubsetSelector(list, defects, kc, p, nil)
		refBF := baseline.SelectBruteForce(list, defects, km, p)
		if !equalInts(subColors, refBF.Colors) || subOps != refBF.Ops {
			t.Fatalf("subset: kernel %v/%d, reference %v/%d", subColors, subOps, refBF.Colors, refBF.Ops)
		}
	})
}
