package twosweep

import (
	"math/rand"
	"testing"
	"testing/quick"

	"listcolor/internal/baseline"
	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/linial"
	"listcolor/internal/palette"
	"listcolor/internal/sim"
)

// TestSelectorsBothValid runs the full protocol under both Phase-I
// selection strategies on identical workloads: both must produce valid
// OLDCs, and the subset search must cost strictly more local work
// whenever the lists are non-trivial.
func TestSelectorsBothValid(t *testing.T) {
	f := func(seed int64, rawN uint8, rawP uint8) bool {
		n := int(rawN%25) + 8
		p := int(rawP%2) + 2 // p ∈ {2,3}: Λ = p² ≤ 9, subset search tractable
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.3, rng)
		d := graph.OrientRandom(g, rng)
		initRes, err := linial.ColorFromIDs(g, sim.Config{})
		if err != nil {
			return false
		}
		inst := coloring.MinSlackOriented(d, 4*p*p+10, p, 0, rng)
		a, err := SolveWithSelector(d, inst, initRes.Colors, initRes.Palette, p, SortSelector, sim.Config{})
		if err != nil {
			return false
		}
		b, err := SolveWithSelector(d, inst, initRes.Colors, initRes.Palette, p, baseline.SubsetSelector, sim.Config{})
		if err != nil {
			return false
		}
		if coloring.ValidateOLDC(d, inst, a.Colors) != nil || coloring.ValidateOLDC(d, inst, b.Colors) != nil {
			return false
		}
		return b.LocalOps > a.LocalOps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestSortSelectorProperties pins the selector's contract: at most p
// colors, all from the list, sorted, and the selection maximizes
// Σ(d+1−k) over same-size subsets (checked against the baseline brute
// force, which returns the same optimum).
func TestSortSelectorProperties(t *testing.T) {
	f := func(seed int64, rawL, rawP uint8) bool {
		lSize := int(rawL%9) + 1
		p := int(rawP%4) + 1
		rng := rand.New(rand.NewSource(seed))
		list := make([]int, lSize)
		defects := make([]int, lSize)
		k := make(map[int]int)
		kc := palette.NewCounter(2 * lSize)
		for i := range list {
			list[i] = i * 2
			defects[i] = rng.Intn(5)
			k[list[i]] = rng.Intn(4)
			kc.AddN(list[i], k[list[i]])
		}
		colors, ops := SortSelector(list, defects, kc, p, palette.NewSelectScratch())
		if ops < 0 {
			return false
		}
		want := p
		if lSize < want {
			want = lSize
		}
		if len(colors) != want {
			return false
		}
		prev := -1
		value := 0
		for _, x := range colors {
			if x <= prev {
				return false // not sorted / duplicate
			}
			prev = x
			found := false
			for i, lx := range list {
				if lx == x {
					value += defects[i] + 1 - k[x]
					found = true
				}
			}
			if !found {
				return false
			}
		}
		best := baseline.SelectBruteForce(list, defects, k, p)
		return value == best.Value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestLocalOpsDeterministic pins the operation counter: two identical
// runs produce identical LocalOps on every driver.
func TestLocalOpsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomRegular(40, 4, rng)
	d := graph.OrientByID(g)
	initRes, err := linial.ColorFromIDs(g, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	inst := coloring.MinSlackOriented(d, 40, 2, 0, rng)
	var prev int64 = -1
	for _, driver := range []sim.Driver{sim.Lockstep, sim.Goroutines, sim.Workers} {
		res, err := Solve(d, inst, initRes.Colors, initRes.Palette, 2, sim.Config{Driver: driver})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.LocalOps != prev {
			t.Fatalf("driver %d: LocalOps %d != %d", driver, res.LocalOps, prev)
		}
		prev = res.LocalOps
	}
	if prev <= 0 {
		t.Error("no local ops recorded")
	}
}
