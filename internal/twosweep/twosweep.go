// Package twosweep implements the paper's core contribution: the
// Two-Sweep algorithm for oriented list defective coloring
// (Algorithm 1, ε = 0) and the Fast-Two-Sweep algorithm (Algorithm 2,
// ε > 0), proving Theorem 1.1.
//
// Given an oriented graph with a proper q-coloring, an integer p ≥ 1,
// and an OLDC instance satisfying the slack condition (Eq. 2)
//
//	Σ_{x∈L_v} (d_v(x)+1) > max{p, |L_v|/p} · β_v,
//
// the algorithm makes two sweeps over the q color classes. In Phase I
// (ascending) each node picks a sublist S_v ⊆ L_v of ≤ p colors
// maximizing Σ_{x∈S_v} (d_v(x) − k_v(x)), where k_v(x) counts how
// often x appears in the sublists of earlier out-neighbors. In
// Phase II (descending) each node commits to a color x ∈ S_v with
// k_v(x) + r_v(x) ≤ d_v(x), where r_v(x) counts later out-neighbors
// that already committed to x; Lemma 3.2 guarantees one exists.
// Total: O(q) rounds, messages of ≤ p colors.
//
// Fast-Two-Sweep first computes a defective coloring with α = ε/p
// (package defective, Lemma 3.4) and runs the Two-Sweep on the
// bichromatic subgraph with defects reduced by ⌊β_v·ε/p⌋, giving
// O(min{q, (p/ε)² + log* q}) rounds under the (1+ε) slack condition
// (Eq. 7).
package twosweep

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"listcolor/internal/coloring"
	"listcolor/internal/defective"
	"listcolor/internal/graph"
	"listcolor/internal/logstar"
	"listcolor/internal/palette"
	"listcolor/internal/sim"
)

// ErrSlack is returned when the instance violates the algorithm's
// slack precondition.
var ErrSlack = errors.New("twosweep: slack condition violated")

// ErrStuck is returned when a node finds no admissible color in
// Phase II — impossible under the precondition, so it indicates the
// precondition was bypassed or an internal bug.
var ErrStuck = errors.New("twosweep: node has no admissible color")

// Result is the outcome of a Two-Sweep run.
type Result struct {
	// Colors[v] ∈ L_v is the committed color of node v.
	Colors []int
	// Stats are the simulator's round/message/bit counts.
	Stats sim.Result
	// LocalOps is the deterministic total of elementary local
	// operations the Phase-I selections spent across all nodes — the
	// machine-independent "internal computation" measure behind the
	// paper's comparison with [MT20, FK23a] (whose nodes search subsets
	// of 2^{L_v}).
	LocalOps int64
}

// Selector chooses the Phase-I sublist S_v: given L_v, its defects,
// the counts k_v (a dense palette counter) and the size bound p, it
// returns the chosen colors and the elementary operations it spent.
// The scratch is the calling node's pooled selection arena; selectors
// may return a slice aliasing it (valid until the node's next
// selection). The default is the paper's sort-based selection
// (near-linear local computation); tests and benchmarks plug in an
// exhaustive subset search to reproduce the
// exponential-local-computation regime of [MT20, FK23a]. The ops
// counts are identical to the retained map-based reference selectors
// in internal/baseline (SelectSort / SelectBruteForce), which the
// differential tests enforce.
type Selector func(list, defects []int, k *palette.Counter, p int, scratch *palette.SelectScratch) (colors []int, ops int64)

// SortSelector is the paper's Phase-I selection: sort L_v by
// d_v(x) − k_v(x) descending (ties to the smaller color) and take the
// first p colors. O(Λ log Λ) operations, allocation-free in steady
// state on the palette kernel.
func SortSelector(list, defects []int, k *palette.Counter, p int, scratch *palette.SelectScratch) ([]int, int64) {
	return scratch.SelectTopP(list, defects, k, p)
}

// CheckSlack verifies Eq. 2 (with p) scaled by (1+ε) (Eq. 7 for
// ε > 0): Σ(d_v(x)+1) > (1+ε)·max{p, |L_v|/p}·β_v at every node.
// The ε = 0 comparison is integer-exact.
//
// Nodes with zero out-degree are skipped: they trivially succeed in
// both phases (k_v ≡ r_v ≡ 0, so any color of a non-empty list is
// admissible), which the color-space-reduction recursion relies on.
func CheckSlack(d *graph.Digraph, inst *coloring.Instance, p int, eps float64) error {
	for v := 0; v < inst.N(); v++ {
		if d.Outdeg(v) == 0 {
			continue
		}
		sum := inst.SlackSum(v)
		maxFactor := p * p
		if l := inst.ListSize(v); l > maxFactor {
			maxFactor = l
		}
		// Condition (cross-multiplied by p): sum·p > (1+ε)·maxFactor·β_v.
		lhs := float64(sum) * float64(p)
		rhs := (1 + eps) * float64(maxFactor) * float64(d.Beta(v))
		if eps == 0 {
			if sum*p <= maxFactor*d.Beta(v) {
				return fmt.Errorf("%w: node %d has Σ(d+1)=%d, need > max{p,|L|/p}·β = %d/%d",
					ErrSlack, v, sum, maxFactor*d.Beta(v), p)
			}
		} else if lhs <= rhs {
			return fmt.Errorf("%w: node %d has Σ(d+1)=%d ≤ (1+ε)·max{p,|L|/p}·β_v", ErrSlack, v, sum)
		}
	}
	return nil
}

// sweepNode is the per-node Two-Sweep state machine. All node-local
// tables live on the palette kernel and are allocated once in Init:
// the rounds themselves only index flat arrays and bump counters, so
// steady-state execution performs no allocation.
type sweepNode struct {
	q, p int
	init int // initial color in [0, q)

	list    []int // L_v (sorted)
	defects []int // aligned defects

	nbr    palette.Index // neighbor id → dense position
	initOf []int         // per position: neighbor's initial color (0 if never received)
	outAt  *palette.Set  // positions that are out-neighbors

	// k counts color occurrences in the sublists of earlier
	// out-neighbors, r the committed colors of later out-neighbors —
	// both accumulated incrementally as the messages arrive, which is
	// equivalent to the Algorithm 1 formulation because every relevant
	// message is delivered no later than the round that reads it.
	k, r    *palette.Counter
	scratch *palette.SelectScratch

	sub      []int // our S_v
	result   *int
	space    int
	fail     *error
	selector Selector
	ops      *int64
}

var _ sim.Node = (*sweepNode)(nil)

// initColorPayload and finalColorPayload distinguish the protocol's
// two single-color message types on the wire.
type initColorPayload struct{ sim.IntPayload }

type finalColorPayload struct{ sim.IntPayload }

func (n *sweepNode) Init(ctx *sim.Context) []sim.Outgoing {
	n.nbr = palette.NewIndex(ctx.Neighbors)
	n.initOf = make([]int, len(ctx.Neighbors))
	n.outAt = palette.NewSet(len(ctx.Neighbors))
	for _, u := range ctx.Out {
		if i, ok := n.nbr.Rank(u); ok {
			n.outAt.Insert(i)
		}
	}
	n.k = palette.NewCounter(n.space)
	n.r = palette.NewCounter(n.space)
	n.scratch = palette.NewSelectScratch()
	return []sim.Outgoing{{To: sim.Broadcast, Payload: initColorPayload{sim.IntPayload{Value: n.init, Domain: n.q}}}}
}

func (n *sweepNode) Round(ctx *sim.Context, round int, inbox []sim.Message) ([]sim.Outgoing, bool) {
	for i := range inbox {
		m := &inbox[i]
		switch p := m.Payload.(type) {
		case initColorPayload:
			if j, ok := n.nbr.Rank(m.From); ok {
				n.initOf[j] = p.Value
			}
		case finalColorPayload:
			// r_v(x): out-neighbors from later classes committing before
			// our Phase II turn. (Finals of smaller-init out-neighbors
			// cannot arrive before we commit, so the guard matches the
			// batch computation exactly.)
			if j, ok := n.nbr.Rank(m.From); ok && n.outAt.Contains(j) && n.initOf[j] > n.init {
				n.r.Add(p.Value)
			}
		case sim.IntsPayload:
			// k_v(x): sublists of out-neighbors from earlier classes, all
			// delivered no later than our own Phase I turn.
			if j, ok := n.nbr.Rank(m.From); ok && n.outAt.Contains(j) && n.initOf[j] < n.init {
				for _, x := range p.Values {
					n.k.Add(x)
				}
			}
		}
	}
	switch {
	case round == 2+n.init:
		// Phase I turn: choose S_v.
		n.chooseSub()
		return []sim.Outgoing{{To: sim.Broadcast, Payload: sim.IntsPayload{Values: n.sub, Domain: n.space, MaxLen: n.p}}}, false
	case round == 2*n.q+1-n.init:
		// Phase II turn: commit to a color.
		x, ok := n.chooseFinal()
		if !ok {
			*n.fail = fmt.Errorf("%w: node %d (S_v=%v)", ErrStuck, ctx.ID, n.sub)
			return nil, true
		}
		*n.result = x
		return []sim.Outgoing{{To: sim.Broadcast, Payload: finalColorPayload{sim.IntPayload{Value: x, Domain: n.space}}}}, true
	default:
		return nil, false
	}
}

// chooseSub computes S_v per Algorithm 1 lines 3–4 (k_v has been
// accumulated on arrival).
func (n *sweepNode) chooseSub() {
	sub, ops := n.selector(n.list, n.defects, n.k, n.p, n.scratch)
	n.sub = sub
	*n.ops = ops
}

// chooseFinal picks the first x ∈ S_v with k_v(x) + r_v(x) ≤ d_v(x)
// (Eq. 5).
func (n *sweepNode) chooseFinal() (int, bool) {
	for _, x := range n.sub {
		d, ok := defectOf(n.list, n.defects, x)
		if !ok {
			continue
		}
		if n.k.Get(x)+n.r.Get(x) <= d {
			return x, true
		}
	}
	return 0, false
}

func defectOf(list, defects []int, x int) (int, bool) {
	i := sort.SearchInts(list, x)
	if i < len(list) && list[i] == x {
		return defects[i], true
	}
	return 0, false
}

// Solve runs Algorithm 1 (Two-Sweep, ε = 0) on the oriented graph d:
// initColors must be a proper q-coloring, and inst must satisfy the
// slack condition Eq. 2 for p. It returns an OLDC-valid coloring in
// 2q+1 rounds.
func Solve(d *graph.Digraph, inst *coloring.Instance, initColors []int, q, p int, cfg sim.Config) (Result, error) {
	return SolveWithSelector(d, inst, initColors, q, p, SortSelector, cfg)
}

// SolveWithSelector is Solve with a custom Phase-I selection strategy.
// Any selector that maximizes Σ_{x∈S}(d_v(x)+1−k_v(x)) over ≤p-subsets
// yields a correct algorithm (the Lemma 3.1 remark); selectors differ
// only in local computation, which is reported in Result.LocalOps.
func SolveWithSelector(d *graph.Digraph, inst *coloring.Instance, initColors []int, q, p int, sel Selector, cfg sim.Config) (Result, error) {
	if err := validateInputs(d, inst, initColors, q, p); err != nil {
		return Result{}, err
	}
	if err := CheckSlack(d, inst, p, 0); err != nil {
		return Result{}, err
	}
	return solveUnchecked(d, inst, initColors, q, p, sel, cfg)
}

// solveUnchecked runs the protocol without the slack precondition
// check (used by SolveFast, which establishes the derived condition
// analytically).
func solveUnchecked(d *graph.Digraph, inst *coloring.Instance, initColors []int, q, p int, sel Selector, cfg sim.Config) (Result, error) {
	n := d.N()
	if d.Underlying().M() == 0 {
		// Edgeless (sub)graph: no conflicts are possible, so every node
		// decides immediately — same color choice as the full protocol
		// (first element of the selected sublist, which is what
		// Phase II picks when k ≡ r ≡ 0), in a single round.
		out := make([]int, n)
		var ops int64
		// One shared zero counter and one shared scratch serve every
		// node: selection only reads k, and out[v] is copied before the
		// next node overwrites the scratch-backed sublist.
		emptyK := palette.NewCounter(inst.Space)
		scratch := palette.NewSelectScratch()
		for v := 0; v < n; v++ {
			sub, o := sel(inst.Lists[v], inst.Defects[v], emptyK, p, scratch)
			ops += o
			if len(sub) == 0 {
				return Result{}, fmt.Errorf("%w: node %d (empty selection)", ErrStuck, v)
			}
			out[v] = sub[0]
		}
		return Result{Colors: out, Stats: sim.Result{Rounds: 1}, LocalOps: ops}, nil
	}
	out := make([]int, n)
	fails := make([]error, n)
	opsPer := make([]int64, n)
	nodes := make([]sim.Node, n)
	for v := 0; v < n; v++ {
		nodes[v] = &sweepNode{
			q: q, p: p,
			init:     initColors[v],
			list:     inst.Lists[v],
			defects:  inst.Defects[v],
			space:    inst.Space,
			result:   &out[v],
			fail:     &fails[v],
			selector: sel,
			ops:      &opsPer[v],
		}
	}
	stats, err := sim.Run(sim.NewOrientedNetwork(d), nodes, cfg)
	if err != nil {
		return Result{}, fmt.Errorf("twosweep: %w", err)
	}
	for _, f := range fails {
		if f != nil {
			return Result{}, f
		}
	}
	var ops int64
	for _, o := range opsPer {
		ops += o
	}
	return Result{Colors: out, Stats: stats, LocalOps: ops}, nil
}

func validateInputs(d *graph.Digraph, inst *coloring.Instance, initColors []int, q, p int) error {
	if p < 1 {
		return fmt.Errorf("twosweep: p must be ≥ 1, got %d", p)
	}
	if inst.N() != d.N() || len(initColors) != d.N() {
		return fmt.Errorf("twosweep: size mismatch (graph %d, instance %d, colors %d)", d.N(), inst.N(), len(initColors))
	}
	if err := inst.Validate(); err != nil {
		return err
	}
	for v := 0; v < inst.N(); v++ {
		if inst.ListSize(v) == 0 {
			return fmt.Errorf("twosweep: node %d has an empty color list", v)
		}
	}
	for v, c := range initColors {
		if c < 0 || c >= q {
			return fmt.Errorf("twosweep: node %d initial color %d outside [0,%d)", v, c, q)
		}
	}
	if err := graph.IsProperColoring(d.Underlying(), initColors); err != nil {
		return fmt.Errorf("twosweep: initial coloring not proper: %w", err)
	}
	return nil
}

// SolveFast runs Algorithm 2 (Fast-Two-Sweep): under the (1+ε) slack
// condition (Eq. 7) it solves the OLDC instance in
// O(min{q, (p/ε)² + log* q}) rounds. For ε = 0 it falls back to
// Solve. initColors must be a proper q-coloring.
func SolveFast(d *graph.Digraph, inst *coloring.Instance, initColors []int, q, p int, eps float64, cfg sim.Config) (Result, error) {
	if eps < 0 {
		return Result{}, fmt.Errorf("twosweep: negative ε %v", eps)
	}
	if eps == 0 {
		return Solve(d, inst, initColors, q, p, cfg)
	}
	if err := validateInputs(d, inst, initColors, q, p); err != nil {
		return Result{}, err
	}
	if err := CheckSlack(d, inst, p, eps); err != nil {
		return Result{}, err
	}
	// Cheap case: the plain sweep over q classes is already within the
	// target bound (Algorithm 2, line 1).
	pOverEps := float64(p) / eps
	if float64(q) <= pOverEps*pOverEps+float64(logstar.LogStar(q)) {
		return solveUnchecked(d, inst, initColors, q, p, SortSelector, cfg)
	}
	// Step 1: defective coloring Ψ with α = ε/p (Lemma 3.4).
	alpha := eps / float64(p)
	span := cfg.Span
	subCfg := cfg
	subCfg.Span = span.Child(fmt.Sprintf("defective split α=%.3g (Lemma 3.4)", alpha))
	psi, err := defective.ColorOriented(d, initColors, q, alpha, subCfg)
	if err != nil {
		return Result{}, fmt.Errorf("twosweep: defective preprocessing: %w", err)
	}
	subCfg.Span.Done(psi.Stats)
	// Step 2: drop monochromatic edges; reduce defects by the at most
	// ⌊β_v·ε/p⌋ conflicts Ψ may hide on them.
	gPrime := d.Underlying().FilterEdges(func(u, v int) bool { return psi.Colors[u] != psi.Colors[v] })
	var arcs [][2]int
	for u := 0; u < d.N(); u++ {
		for _, v := range d.Out(u) {
			if psi.Colors[u] != psi.Colors[v] {
				arcs = append(arcs, [2]int{u, v})
			}
		}
	}
	dPrime, err := graph.OrientArbitraryFrom(gPrime, arcs)
	if err != nil {
		return Result{}, fmt.Errorf("twosweep: restricting orientation: %w", err)
	}
	// Reduce by the conflicts Ψ may hide. Using the true out-degree
	// (not the β_v = max(1,·) convention) keeps zero-out-degree nodes,
	// which can never suffer hidden conflicts, at full defect.
	reduced := inst.MapDefects(func(v, x, dv int) int {
		return dv - int(math.Floor(alpha*float64(d.Outdeg(v))))
	})
	// Step 3: Two-Sweep over the K = O(p²/ε²) classes of Ψ.
	sweepCfg := cfg
	sweepCfg.Span = span.Child(fmt.Sprintf("two-sweep over q'=%d classes (Algorithm 1)", psi.Palette))
	sub, err := solveUnchecked(dPrime, reduced, psi.Colors, psi.Palette, p, SortSelector, sweepCfg)
	if err != nil {
		return Result{}, err
	}
	sweepCfg.Span.Done(sub.Stats)
	return Result{Colors: sub.Colors, Stats: sim.Seq(psi.Stats, sub.Stats)}, nil
}
