package twosweep

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/linial"
	"listcolor/internal/logstar"
	"listcolor/internal/sim"
)

// properColoring computes a proper coloring of g via Linial.
func properColoring(t testing.TB, g *graph.Graph) ([]int, int) {
	t.Helper()
	res, err := linial.ColorFromIDs(g, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Colors, res.Palette
}

func TestSolveBasicOLDC(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomRegular(60, 6, rng)
	d := graph.OrientByID(g)
	init, q := properColoring(t, g)
	p := 3
	inst := coloring.MinSlackOriented(d, 100, p, 0, rng)
	res, err := Solve(d, inst, init, q, p, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.ValidateOLDC(d, inst, res.Colors); err != nil {
		t.Errorf("output invalid: %v", err)
	}
	if res.Stats.Rounds != 2*q+1 {
		t.Errorf("Rounds = %d, want 2q+1 = %d", res.Stats.Rounds, 2*q+1)
	}
}

func TestSolveZeroDefectIsProperListColoring(t *testing.T) {
	// p = β+1, all defects 0, lists of size p²=(β+1)² — the "list
	// coloring with bounded outdegree" application from Section 1.1.
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomRegular(80, 6, rng)
	d := graph.OrientByDegeneracy(g)
	beta := d.MaxBeta()
	p := beta + 1
	init, q := properColoring(t, g)
	space := 4 * p * p
	inst := coloring.Uniform(g.N(), space, p*p, 0, rng)
	if err := CheckSlack(d, inst, p, 0); err != nil {
		t.Fatalf("instance should satisfy slack: %v", err)
	}
	res, err := Solve(d, inst, init, q, p, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.ValidateProperList(g, inst, res.Colors); err != nil {
		t.Errorf("zero-defect output not a proper list coloring: %v", err)
	}
}

func TestSolveSlackRejection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.Ring(12)
	d := graph.OrientByID(g)
	init, q := properColoring(t, g)
	// All-zero defects with list size p²=4 and β=2: Σ(d+1)=4 = p·β — not
	// strictly greater, must be rejected.
	inst := coloring.Uniform(12, 10, 4, 0, rng)
	if _, err := Solve(d, inst, init, q, 2, sim.Config{}); !errors.Is(err, ErrSlack) {
		t.Errorf("err = %v, want ErrSlack", err)
	}
}

func TestSolveInputValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.Ring(6)
	d := graph.OrientByID(g)
	inst := coloring.Uniform(6, 20, 4, 3, rng)
	good := []int{0, 1, 0, 1, 0, 1}
	if _, err := Solve(d, inst, good, 2, 0, sim.Config{}); err == nil {
		t.Error("accepted p = 0")
	}
	if _, err := Solve(d, inst, []int{0, 1}, 2, 2, sim.Config{}); err == nil {
		t.Error("accepted short init coloring")
	}
	if _, err := Solve(d, inst, []int{0, 0, 0, 1, 0, 1}, 2, 2, sim.Config{}); err == nil {
		t.Error("accepted improper init coloring")
	}
	if _, err := Solve(d, inst, []int{0, 1, 0, 1, 0, 5}, 2, 2, sim.Config{}); err == nil {
		t.Error("accepted out-of-range init color")
	}
}

func TestSolveQuickRandomInstances(t *testing.T) {
	// Property: on random graphs/orientations with minimum-slack
	// instances, the output is always OLDC-valid.
	f := func(seed int64, rawN, rawP uint8) bool {
		n := int(rawN%30) + 8
		p := int(rawP%3) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.25, rng)
		d := graph.OrientRandom(g, rng)
		initRes, err := linial.ColorFromIDs(g, sim.Config{})
		if err != nil {
			return false
		}
		space := 4*p*p + 20
		inst := coloring.MinSlackOriented(d, space, p, 0, rng)
		res, err := Solve(d, inst, initRes.Colors, initRes.Palette, p, sim.Config{})
		if err != nil {
			return false
		}
		return coloring.ValidateOLDC(d, inst, res.Colors) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestThreeColorDefective(t *testing.T) {
	// Paper, Section 1.1: list d-defective 3-coloring in O(Δ + log* n)
	// whenever d > (2Δ−3)/3. With lists {0,1,2}, p=1:
	// max{p,|L|/p}·β = 3β; Σ(d+1) = 3(d+1) > 3β ⟺ d ≥ β.
	// Using β = Δ (orienting all edges both... no — orient by id, β≤Δ).
	for _, n := range []int{9, 24, 60} {
		g := graph.Ring(n)
		d := graph.OrientByID(g)
		init, q := properColoring(t, g)
		inst := coloring.ThreeColor(n, 2) // d=2 ≥ β=2
		res, err := Solve(d, inst, init, q, 1, sim.Config{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := coloring.ValidateOLDC(d, inst, res.Colors); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		if mc := graph.MaxColor(res.Colors); mc > 2 {
			t.Errorf("n=%d: used color %d > 2", n, mc)
		}
	}
}

func TestSolveFastMatchesGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomRegular(150, 8, rng)
	d := graph.OrientByID(g)
	init, q := properColoring(t, g)
	p := 2
	eps := 1.0
	inst := coloring.MinSlackOriented(d, 60, p, eps, rng)
	res, err := SolveFast(d, inst, init, q, p, eps, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.ValidateOLDC(d, inst, res.Colors); err != nil {
		t.Errorf("fast output invalid: %v", err)
	}
	// Round bound: O((p/ε)² + log* q) with a generous constant.
	pe := float64(p) / eps
	bound := int(40*(pe*pe+1)) + 8*logstar.LogStar(q) + 20
	if res.Stats.Rounds > bound {
		t.Errorf("rounds %d exceed O((p/ε)²+log* q) ≈ %d", res.Stats.Rounds, bound)
	}
}

func TestSolveFastEpsZeroFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.Ring(10)
	d := graph.OrientByID(g)
	init, q := properColoring(t, g)
	p := 2
	inst := coloring.MinSlackOriented(d, 30, p, 0, rng)
	a, err := SolveFast(d, inst, init, q, p, 0, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(d, inst, init, q, p, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Colors {
		if a.Colors[v] != b.Colors[v] {
			t.Fatal("ε=0 fast path differs from Solve")
		}
	}
	if _, err := SolveFast(d, inst, init, q, p, -0.5, sim.Config{}); err == nil {
		t.Error("accepted negative ε")
	}
}

func TestSolveFastQuick(t *testing.T) {
	f := func(seed int64, rawN, rawP uint8) bool {
		n := int(rawN%40) + 10
		p := int(rawP%2) + 1
		eps := 1.0
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.3, rng)
		d := graph.OrientRandom(g, rng)
		initRes, err := linial.ColorFromIDs(g, sim.Config{})
		if err != nil {
			return false
		}
		space := 4*p*p + 30
		inst := coloring.MinSlackOriented(d, space, p, eps, rng)
		res, err := SolveFast(d, inst, initRes.Colors, initRes.Palette, p, eps, sim.Config{})
		if err != nil {
			return false
		}
		return coloring.ValidateOLDC(d, inst, res.Colors) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSolveCongestMessageShape(t *testing.T) {
	// Theorem 1.1: nodes forward their initial color, then exchange a
	// list of ≤ p colors. Check the max message size matches.
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomRegular(40, 4, rng)
	d := graph.OrientByID(g)
	init, q := properColoring(t, g)
	p := 2
	space := 50
	inst := coloring.MinSlackOriented(d, space, p, 0, rng)
	expected := sim.IntsPayload{Values: make([]int, p), Domain: space, MaxLen: p}.SizeBits()
	res, err := Solve(d, inst, init, q, p, sim.Config{BandwidthBits: expected})
	if err != nil {
		t.Fatalf("exceeded the p-colors message bound: %v", err)
	}
	if res.Stats.MaxMessageBits > expected {
		t.Errorf("MaxMessageBits = %d > %d", res.Stats.MaxMessageBits, expected)
	}
}

func TestSolveDriversAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := graph.GNP(35, 0.3, rng)
	d := graph.OrientByID(g)
	init, q := properColoring(t, g)
	p := 2
	inst := coloring.MinSlackOriented(d, 40, p, 0, rng)
	a, err := Solve(d, inst, init, q, p, sim.Config{Driver: sim.Lockstep})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(d, inst, init, q, p, sim.Config{Driver: sim.Goroutines})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Colors {
		if a.Colors[v] != b.Colors[v] {
			t.Fatalf("drivers disagree at node %d", v)
		}
	}
}

func TestStarTightInstance(t *testing.T) {
	// A directed star (center points at all leaves) with minimal slack:
	// deterministic worst case for Phase II.
	n := 11
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(0, v)
	}
	rank := make([]int, n)
	rank[0] = n // center highest: all arcs outward
	for v := 1; v < n; v++ {
		rank[v] = v
	}
	d, err := graph.OrientByRank(g, rank)
	if err != nil {
		t.Fatal(err)
	}
	init := make([]int, n)
	init[0] = 1 // proper 2-coloring
	p := 1
	// Center: β=10, p=1 ⇒ need Σ(d+1) > 10 with |L|=1: defect 10.
	inst := &coloring.Instance{Space: 1, Lists: make([][]int, n), Defects: make([][]int, n)}
	for v := 0; v < n; v++ {
		inst.Lists[v] = []int{0}
		if v == 0 {
			inst.Defects[v] = []int{10}
		} else {
			inst.Defects[v] = []int{1} // β_v = 1 by convention ⇒ need > 1
		}
	}
	res, err := Solve(d, inst, init, 2, p, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.ValidateOLDC(d, inst, res.Colors); err != nil {
		t.Error(err)
	}
}
