package workload

// cache.go is the keyed workload cache behind the parallel sweep
// scheduler (internal/bench) and the conformance matrix: graph
// families that several experiments sweep with identical parameters —
// the same G(n,p) or random-regular family used by E3, E5 and E12 —
// are generated once and shared read-only, and per-graph derived
// values (orientations, Linial bootstraps) are memoized next to the
// graph they belong to. Hit/miss counters make cross-experiment reuse
// observable; BENCH_harness.json records them.

import (
	"sync"
	"sync/atomic"

	"listcolor/internal/graph"
)

// Key identifies one cached family build. Params.Seed participates in
// the key as a variant tag, so callers that genuinely want distinct
// graphs of the same shape (E2's per-trial G(n,p) instances) stay
// distinct while everyone else converges on the shared build.
type Key struct {
	Family string
	Params Params
}

// Cache memoizes Build results and per-graph derived values for
// read-only sharing across concurrent sweep cells. The zero value is
// ready to use; a nil *Cache degrades to uncached direct builds, so
// callers never need to guard. All methods are safe for concurrent
// use.
//
// Sharing contract: a graph handed out by the cache is normalized at
// insertion and must be treated as immutable by every consumer —
// solvers, generators and validators only read adjacency. Derived
// values are shared under the same contract.
type Cache struct {
	mu      sync.Mutex
	builds  map[Key]*buildEntry
	derived map[derivedKey]*derivedEntry

	hits        atomic.Int64
	misses      atomic.Int64
	derivedHits atomic.Int64
	derivedMiss atomic.Int64
}

type buildEntry struct {
	once sync.Once
	g    *graph.Graph
	err  error
}

type derivedKey struct {
	g    *graph.Graph
	name string
}

type derivedEntry struct {
	once sync.Once
	v    any
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{} }

// Counters is a point-in-time snapshot of the cache's reuse counters.
// Hits counts Build calls served from a previously generated graph;
// DerivedHits counts Derived calls served from a previously computed
// value.
type Counters struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	DerivedHits   int64 `json:"derived_hits"`
	DerivedMisses int64 `json:"derived_misses"`
}

// Counters returns the current reuse counters; zero for a nil cache.
func (c *Cache) Counters() Counters {
	if c == nil {
		return Counters{}
	}
	return Counters{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		DerivedHits:   c.derivedHits.Load(),
		DerivedMisses: c.derivedMiss.Load(),
	}
}

// Build returns the graph of the named family under p, generating it
// on first use and sharing the normalized result afterwards. Two
// concurrent requests for the same key generate once: the entry is
// claimed under the cache lock and built under a per-entry once, so a
// slow generator never blocks unrelated keys. A nil cache builds
// directly.
func (c *Cache) Build(family string, p Params) (*graph.Graph, error) {
	if c == nil {
		return Build(family, p)
	}
	k := Key{Family: family, Params: p}
	c.mu.Lock()
	if c.builds == nil {
		c.builds = make(map[Key]*buildEntry)
	}
	e, ok := c.builds[k]
	if !ok {
		e = &buildEntry{}
		c.builds[k] = e
	}
	c.mu.Unlock()
	hit := true
	e.once.Do(func() {
		hit = false
		e.g, e.err = Build(family, p)
		if e.g != nil {
			e.g.Normalize() // freeze before sharing: every later Normalize is a no-op read
		}
	})
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e.g, e.err
}

// Derived memoizes a value computed from a shared graph — an
// orientation, a bootstrap coloring, a CSR view — under the given
// name. The build function runs at most once per (graph, name) pair;
// concurrent callers block until it finishes and then share the
// result read-only. build must be deterministic: the cache is what
// makes sweep cells order-independent, so a nondeterministic build
// would leak schedule dependence into results. A nil cache computes
// directly.
func (c *Cache) Derived(g *graph.Graph, name string, build func() any) any {
	if c == nil {
		return build()
	}
	k := derivedKey{g: g, name: name}
	c.mu.Lock()
	if c.derived == nil {
		c.derived = make(map[derivedKey]*derivedEntry)
	}
	e, ok := c.derived[k]
	if !ok {
		e = &derivedEntry{}
		c.derived[k] = e
	}
	c.mu.Unlock()
	hit := true
	e.once.Do(func() {
		hit = false
		e.v = build()
	})
	if hit {
		c.derivedHits.Add(1)
	} else {
		c.derivedMiss.Add(1)
	}
	return e.v
}

// Len returns how many distinct family builds the cache holds.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.builds)
}
