package workload

import (
	"sync"
	"testing"

	"listcolor/internal/graph"
)

func TestCacheSharesBuilds(t *testing.T) {
	c := NewCache()
	p := Params{N: 64, Degree: 4, Seed: 7}
	g1, err := c.Build("regular", p)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.Build("regular", p)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("same key returned distinct graphs")
	}
	direct, err := Build("regular", p)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Fingerprint() != direct.Fingerprint() {
		t.Error("cached build differs structurally from a direct build")
	}
	got := c.Counters()
	if got.Hits != 1 || got.Misses != 1 {
		t.Errorf("counters = %+v, want 1 hit / 1 miss", got)
	}
}

func TestCacheKeysAreDistinct(t *testing.T) {
	c := NewCache()
	a, _ := c.Build("regular", Params{N: 64, Degree: 4, Seed: 1})
	b, _ := c.Build("regular", Params{N: 64, Degree: 4, Seed: 2})
	if a == b {
		t.Error("different seeds must not share a build")
	}
	d, _ := c.Build("ring", Params{N: 64})
	if d == a {
		t.Error("different families must not share a build")
	}
	if got := c.Counters(); got.Misses != 3 || got.Hits != 0 {
		t.Errorf("counters = %+v, want 3 misses / 0 hits", got)
	}
}

func TestCacheBuildError(t *testing.T) {
	c := NewCache()
	if _, err := c.Build("nope", Params{N: 8}); err == nil {
		t.Fatal("unknown family must error")
	}
	// The error is memoized like any build result.
	if _, err := c.Build("nope", Params{N: 8}); err == nil {
		t.Fatal("memoized error lost")
	}
}

func TestCacheDerived(t *testing.T) {
	c := NewCache()
	g, err := c.Build("ring", Params{N: 16})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	build := func() any {
		calls++
		return graph.OrientByID(g)
	}
	d1 := c.Derived(g, "orient:id", build).(*graph.Digraph)
	d2 := c.Derived(g, "orient:id", build).(*graph.Digraph)
	if d1 != d2 || calls != 1 {
		t.Errorf("derived value not shared (calls=%d)", calls)
	}
	c.Derived(g, "orient:other", func() any { calls++; return nil })
	if calls != 2 {
		t.Errorf("distinct derived names must build separately (calls=%d)", calls)
	}
	got := c.Counters()
	if got.DerivedHits != 1 || got.DerivedMisses != 2 {
		t.Errorf("derived counters = %+v, want 1 hit / 2 misses", got)
	}
}

func TestNilCacheFallsBack(t *testing.T) {
	var c *Cache
	g, err := c.Build("ring", Params{N: 8})
	if err != nil || g == nil {
		t.Fatalf("nil cache Build = (%v, %v)", g, err)
	}
	v := c.Derived(g, "x", func() any { return 42 })
	if v != 42 {
		t.Errorf("nil cache Derived = %v", v)
	}
	if got := c.Counters(); got != (Counters{}) {
		t.Errorf("nil cache counters = %+v", got)
	}
	if c.Len() != 0 {
		t.Errorf("nil cache Len = %d", c.Len())
	}
}

// TestCacheConcurrent drives Build and Derived from many goroutines on
// overlapping keys; under -race this is the cache's data-race check,
// and the assertions pin single-generation semantics (every goroutine
// sees one shared graph per key).
func TestCacheConcurrent(t *testing.T) {
	c := NewCache()
	const workers = 16
	keys := []Params{
		{N: 48, Degree: 4, Seed: 1},
		{N: 48, Degree: 4, Seed: 2},
		{N: 96, Degree: 6, Seed: 1},
	}
	graphs := make([][]*graph.Graph, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, p := range keys {
				g, err := c.Build("regular", p)
				if err != nil {
					t.Error(err)
					return
				}
				d := c.Derived(g, "orient:id", func() any { return graph.OrientByID(g) }).(*graph.Digraph)
				if d.Underlying() != g {
					t.Error("derived orientation bound to the wrong graph")
				}
				graphs[w] = append(graphs[w], g)
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range keys {
			if graphs[w][i] != graphs[0][i] {
				t.Fatalf("worker %d key %d got a private graph", w, i)
			}
		}
	}
	got := c.Counters()
	if got.Misses != int64(len(keys)) {
		t.Errorf("misses = %d, want %d (one generation per key)", got.Misses, len(keys))
	}
	if got.Hits != int64(workers*len(keys)-len(keys)) {
		t.Errorf("hits = %d, want %d", got.Hits, workers*len(keys)-len(keys))
	}
}

// Worker-independence of cached builds: the graph a key resolves to
// must be identical (by fingerprint) no matter how many goroutines
// race the cache and no matter which one wins the generation — the
// property that keeps the parallel sweep scheduler's results, and any
// parallel substrate underneath it, independent of GOMAXPROCS.
func TestCacheBuildsAreWorkerIndependent(t *testing.T) {
	keys := []Key{
		{Family: "gnp", Params: Params{N: 200, Prob: 0.05, Seed: 5}},
		{Family: "regular", Params: Params{N: 128, Degree: 4, Seed: 9}},
		{Family: "ring", Params: Params{N: 97}},
	}
	want := make([]uint64, len(keys))
	for i, k := range keys {
		g, err := Build(k.Family, k.Params)
		if err != nil {
			t.Fatalf("direct Build(%s): %v", k.Family, err)
		}
		g.Normalize()
		want[i] = g.Fingerprint()
	}
	for _, workers := range []int{1, 2, 4, 7} {
		c := NewCache() // fresh cache per worker count: every race replays
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i, k := range keys {
					g, err := c.Build(k.Family, k.Params)
					if err != nil {
						t.Errorf("cached Build(%s): %v", k.Family, err)
						return
					}
					if fp := g.Fingerprint(); fp != want[i] {
						t.Errorf("workers=%d: %s fingerprint %x, want %x", workers, k.Family, fp, want[i])
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}
