// Package workload is the shared registry of named graph families used
// by the command-line tools and the benchmark harness: one place that
// maps a family name plus parameters to a generated graph, so
// `colorsim -graph regular`, `inspect -graph regular` and the
// experiment tables all mean the same thing.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"listcolor/internal/graph"
	"listcolor/internal/hypergraph"
)

// Params are the knobs a family may consume; unused fields are
// ignored by families that do not need them.
type Params struct {
	N      int     // vertex budget
	Degree int     // degree / attachment / rank parameter
	Prob   float64 // edge probability (gnp)
	Radius float64 // connection radius (udg)
	Seed   int64
}

// Family generates graphs of one named family.
type Family struct {
	Name        string
	Description string
	Build       func(Params) (*graph.Graph, error)
}

// Families returns the registry, sorted by name.
func Families() []Family {
	fams := []Family{
		{
			Name:        "ring",
			Description: "the n-cycle (Δ=2, θ=2)",
			Build: func(p Params) (*graph.Graph, error) {
				if p.N < 3 {
					return nil, fmt.Errorf("workload: ring needs n ≥ 3")
				}
				return graph.Ring(p.N), nil
			},
		},
		{
			Name:        "grid",
			Description: "⌊√n⌋×⌊√n⌋ grid (Δ≤4)",
			Build: func(p Params) (*graph.Graph, error) {
				side := int(math.Round(math.Sqrt(float64(p.N))))
				if side < 2 {
					side = 2
				}
				return graph.Grid(side, side), nil
			},
		},
		{
			Name:        "regular",
			Description: "random d-regular graph",
			Build: func(p Params) (*graph.Graph, error) {
				n, d := p.N, p.Degree
				if d < 0 || d >= n {
					return nil, fmt.Errorf("workload: regular needs 0 ≤ d < n")
				}
				if (n*d)%2 != 0 {
					n++
				}
				return graph.RandomRegular(n, d, rand.New(rand.NewSource(p.Seed))), nil
			},
		},
		{
			Name:        "gnp",
			Description: "Erdős–Rényi G(n, p)",
			Build: func(p Params) (*graph.Graph, error) {
				if p.Prob < 0 || p.Prob > 1 {
					return nil, fmt.Errorf("workload: gnp needs 0 ≤ prob ≤ 1")
				}
				return graph.GNP(p.N, p.Prob, rand.New(rand.NewSource(p.Seed))), nil
			},
		},
		{
			Name:        "powerlaw",
			Description: "preferential attachment with k links per vertex",
			Build: func(p Params) (*graph.Graph, error) {
				if p.Degree < 1 || p.N < p.Degree+1 {
					return nil, fmt.Errorf("workload: powerlaw needs k ≥ 1 and n > k")
				}
				return graph.PowerLaw(p.N, p.Degree, rand.New(rand.NewSource(p.Seed))), nil
			},
		},
		{
			Name:        "complete",
			Description: "the complete graph K_n",
			Build: func(p Params) (*graph.Graph, error) {
				if p.N < 1 {
					return nil, fmt.Errorf("workload: complete needs n ≥ 1")
				}
				return graph.Complete(p.N), nil
			},
		},
		{
			Name:        "hypercube",
			Description: "largest hypercube with ≤ n vertices",
			Build: func(p Params) (*graph.Graph, error) {
				if p.N < 2 {
					return nil, fmt.Errorf("workload: hypercube needs n ≥ 2")
				}
				d := 1
				for 1<<uint(d+1) <= p.N {
					d++
				}
				return graph.Hypercube(d), nil
			},
		},
		{
			Name:        "tree",
			Description: "complete d-ary tree with ≈n vertices",
			Build: func(p Params) (*graph.Graph, error) {
				k := p.Degree
				if k < 1 {
					k = 2
				}
				levels := 1
				total, width := 1, 1
				for total < p.N {
					width *= k
					total += width
					levels++
				}
				return graph.CompleteKaryTree(k, levels), nil
			},
		},
		{
			Name:        "udg",
			Description: "random unit-disk graph (θ ≤ 5)",
			Build: func(p Params) (*graph.Graph, error) {
				r := p.Radius
				if r == 0 {
					r = 0.1
				}
				if r < 0 {
					return nil, fmt.Errorf("workload: udg needs radius ≥ 0")
				}
				return graph.RandomGeometric(p.N, r, rand.New(rand.NewSource(p.Seed))).Graph, nil
			},
		},
		{
			Name:        "linegraph",
			Description: "line graph of a random d-regular graph (θ ≤ 2)",
			Build: func(p Params) (*graph.Graph, error) {
				n, d := p.N, p.Degree
				if d < 1 || d >= n {
					return nil, fmt.Errorf("workload: linegraph needs 1 ≤ d < n")
				}
				if (n*d)%2 != 0 {
					n++
				}
				base := graph.RandomRegular(n, d, rand.New(rand.NewSource(p.Seed)))
				lg, _ := graph.LineGraph(base)
				return lg, nil
			},
		},
		{
			Name:        "hyperline",
			Description: "line graph of a random rank-r hypergraph (θ ≤ r, r = degree param)",
			Build: func(p Params) (*graph.Graph, error) {
				r := p.Degree
				if r < 2 {
					return nil, fmt.Errorf("workload: hyperline needs rank ≥ 2")
				}
				h := hypergraph.RandomRegularRank(p.N, p.N, r, rand.New(rand.NewSource(p.Seed)))
				return h.LineGraph(), nil
			},
		},
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	return fams
}

// Build generates a graph of the named family.
func Build(name string, p Params) (*graph.Graph, error) {
	for _, f := range Families() {
		if f.Name == name {
			return f.Build(p)
		}
	}
	return nil, fmt.Errorf("workload: unknown family %q (known: %v)", name, Names())
}

// Names lists the registered family names.
func Names() []string {
	fams := Families()
	out := make([]string, len(fams))
	for i, f := range fams {
		out[i] = f.Name
	}
	return out
}
