package workload

import (
	"testing"
)

func TestAllFamiliesBuild(t *testing.T) {
	p := Params{N: 40, Degree: 3, Prob: 0.2, Radius: 0.15, Seed: 1}
	for _, f := range Families() {
		g, err := f.Build(p)
		if err != nil {
			t.Errorf("%s: %v", f.Name, err)
			continue
		}
		if g.N() == 0 {
			t.Errorf("%s: empty graph", f.Name)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
}

func TestBuildByName(t *testing.T) {
	g, err := Build("ring", Params{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 || g.M() != 10 {
		t.Errorf("ring(10): %v", g)
	}
	if _, err := Build("nosuch", Params{}); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestFamilyValidation(t *testing.T) {
	cases := []struct {
		family string
		p      Params
	}{
		{"ring", Params{N: 2}},
		{"regular", Params{N: 4, Degree: 9}},
		{"gnp", Params{N: 5, Prob: 2}},
		{"powerlaw", Params{N: 2, Degree: 3}},
		{"complete", Params{N: 0}},
		{"hypercube", Params{N: 1}},
		{"udg", Params{N: 5, Radius: -1}},
		{"linegraph", Params{N: 4, Degree: 0}},
		{"hyperline", Params{N: 6, Degree: 1}},
	}
	for _, c := range cases {
		if _, err := Build(c.family, c.p); err == nil {
			t.Errorf("%s with %+v accepted", c.family, c.p)
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range []string{"regular", "gnp", "udg", "powerlaw"} {
		p := Params{N: 30, Degree: 3, Prob: 0.3, Radius: 0.2, Seed: 7}
		a, err := Build(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Build(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ea, eb := a.Edges(), b.Edges()
		if len(ea) != len(eb) {
			t.Fatalf("%s: nondeterministic edge count", name)
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("%s: nondeterministic edges", name)
			}
		}
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("only %d families", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %v", names)
		}
	}
}
