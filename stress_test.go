package listcolor

// Large-scale stress tests, skipped in -short mode: they pin down that
// the simulator and the full pipelines stay correct and tractable at
// sizes well beyond the unit tests.

import (
	"testing"
)

func TestStressLinialLargeRing(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	g := NewRing(100_000)
	res, err := LinialColor(g, Config{Driver: Workers})
	if err != nil {
		t.Fatal(err)
	}
	if err := IsProperColoring(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds > 10 {
		t.Errorf("log*(1e5) regime needs ≤ 10 rounds, got %d", res.Stats.Rounds)
	}
}

func TestStressTwoSweepLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	g := NewRandomRegular(20_000, 10, 1)
	d := OrientByID(g)
	base, err := LinialColor(g, Config{Driver: Workers})
	if err != nil {
		t.Fatal(err)
	}
	p := 3
	inst := NewMinSlackInstance(d, 100, p, 0, 2)
	res, err := TwoSweep(d, inst, base.Colors, base.Palette, p, Config{Driver: Workers})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateOLDC(d, inst, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 2*base.Palette+1 {
		t.Errorf("rounds %d != 2q+1", res.Stats.Rounds)
	}
}

func TestStressDegPlusOneMediumDense(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	g := NewRandomRegular(2_000, 16, 3)
	inst := NewDegreePlusOneInstance(g, 17, 4)
	res, err := ColorDegPlusOne(g, inst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateProperList(g, inst, res.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestStressEdgeColorDenser(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	g := NewComplete(10) // line graph: 45 nodes, Δ_L = 16
	colors, palette, _, err := EdgeColor(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()
	for i := range edges {
		for j := i + 1; j < len(edges); j++ {
			share := edges[i][0] == edges[j][0] || edges[i][0] == edges[j][1] ||
				edges[i][1] == edges[j][0] || edges[i][1] == edges[j][1]
			if share && colors[i] == colors[j] {
				t.Fatalf("incident edges share color %d", colors[i])
			}
		}
	}
	if palette != 2*g.MaxDegree()-1 {
		t.Errorf("palette %d", palette)
	}
}

func TestStressStreamedCSRLinialMillion(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// End-to-end over the streamed substrate: build a 10⁶-node ring as
	// CSR (no adjacency maps), bridge to the solver's adjacency-list
	// interface, and properly color it in the log* regime.
	c := NewStreamedRing(1_000_000)
	if c.N() != 1_000_000 || c.M() != 1_000_000 {
		t.Fatalf("streamed ring: %v", c)
	}
	g := c.Graph()
	if c.Fingerprint() != g.Fingerprint() {
		t.Fatalf("CSR/Graph fingerprint mismatch")
	}
	res, err := LinialColor(g, Config{Driver: Workers, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := IsProperColoring(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds > 10 {
		t.Errorf("log*(1e6) regime needs ≤ 10 rounds, got %d", res.Stats.Rounds)
	}
}

func TestStressStreamedGNPBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// The streamed G(n,p) build must agree with the map-built generator
	// path on structural invariants at a size where the reference
	// builder itself is the bottleneck.
	c := NewStreamedGNP(500_000, 6.0/500_000, 7)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	var degSum int64
	for v := 0; v < c.N(); v++ {
		degSum += int64(c.Degree(v))
	}
	if degSum != 2*c.M() {
		t.Fatalf("degree sum %d != 2m %d", degSum, 2*c.M())
	}
}

func TestStressGeneralSolverMedium(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	g := NewGNP(400, 0.05, 5)
	inst := NewDegreePlusOneInstance(g, g.MaxDegree()+1, 6)
	res, err := SolveArbdefective(g, inst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateProperList(g, inst, res.Result.Colors); err != nil {
		t.Fatal(err)
	}
}
